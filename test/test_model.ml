(* Tests for the analytical model tier: Model/Predict sanity, the
   Objective abstraction, the engine's analytical pre-filter, and the
   Cost.scale rounding regression. *)

let machine = Machine.sgi_r10000

let mm_variants = lazy (Core.Derive.variants machine Kernels.Matmul.kernel)

let first_variant () = List.hd (Lazy.force mm_variants)

(* --- Cost.scale --- *)

let test_scale_rounds_flops () =
  (* Regression: scaling used to truncate the flop count, so
     extrapolating a sampled run lost flops (0.7 * 5 = 3.5 -> 3).
     Rounding recovers the nearest integer. *)
  let c =
    Memsim.Cost.of_components machine ~mem_issue:10.0 ~fp_issue:10.0
      ~other_issue:1.0 ~stall:5.0 ~flops:5
  in
  let scaled = Memsim.Cost.scale 0.7 c in
  Alcotest.(check int) "rounded, not truncated" 4 scaled.Memsim.Cost.flops;
  let c6 =
    Memsim.Cost.of_components machine ~mem_issue:10.0 ~fp_issue:10.0
      ~other_issue:1.0 ~stall:5.0 ~flops:6
  in
  let back = Memsim.Cost.scale 2.0 (Memsim.Cost.scale 0.5 c6) in
  Alcotest.(check int) "halve then double" 6 back.Memsim.Cost.flops

(* --- Model via Predict --- *)

let point v ~ti =
  List.map
    (fun (p : Core.Param.t) ->
      match p.Core.Param.kind with
      | Core.Param.Tile -> (p.Core.Param.name, ti)
      | Core.Param.Unroll -> (p.Core.Param.name, 2))
    (Core.Variant.params v)

let test_prediction_finite () =
  let v = first_variant () in
  let n = 96 in
  let prepared = Core.Predict.prepare v ~n in
  List.iter
    (fun ti ->
      let pred =
        Core.Predict.predict machine prepared ~bindings:(point v ~ti)
          ~prefetch:[]
      in
      let cycles = Model.cycles pred in
      Alcotest.(check bool)
        (Printf.sprintf "finite positive cycles at ti=%d" ti)
        true
        (Float.is_finite cycles && cycles > 0.0);
      Array.iter
        (fun m ->
          Alcotest.(check bool) "non-negative misses" true (m >= 0.0))
        pred.Model.level_misses;
      Alcotest.(check int) "one entry per cache level"
        (Machine.levels machine)
        (Array.length pred.Model.level_misses))
    [ 4; 16; 32 ]

let test_tiling_reduces_predicted_misses () =
  (* The whole point of the model: a capacity-respecting tile predicts
     fewer L1 misses than an untiled (tile = n) execution. *)
  let v = first_variant () in
  let n = 96 in
  let prepared = Core.Predict.prepare v ~n in
  let l1 ti =
    (Core.Predict.predict machine prepared ~bindings:(point v ~ti)
       ~prefetch:[])
      .Model.level_misses.(0)
  in
  Alcotest.(check bool) "tiled < untiled" true (l1 24 < l1 96)

let test_score_matches_objective () =
  let v = first_variant () in
  let n = 64 in
  let bindings = point v ~ti:16 in
  let s_cycles =
    Core.Predict.score_point ~objective:Core.Objective.Cycles machine v ~n
      ~bindings ~prefetch:[]
  in
  let s_energy =
    Core.Predict.score_point ~objective:Core.Objective.Energy machine v ~n
      ~bindings ~prefetch:[]
  in
  Alcotest.(check bool) "cycles score positive" true (s_cycles > 0.0);
  Alcotest.(check bool) "energy score positive" true (s_energy > 0.0);
  Alcotest.(check bool) "objectives differ" true (s_cycles <> s_energy)

let test_three_level_prediction () =
  (* On the 3-level machine the model must produce per-level traffic
     for L1, L2 and L3. *)
  let m3 = Machine.modern_3level in
  let vs = Core.Derive.variants m3 Kernels.Matmul.kernel in
  let v = List.hd vs in
  let pred =
    Core.Predict.predict m3 (Core.Predict.prepare v ~n:64)
      ~bindings:(point v ~ti:16) ~prefetch:[]
  in
  Alcotest.(check int) "three levels" 3
    (Array.length pred.Model.level_misses);
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Model.cycles pred))

(* --- Objective on measurements --- *)

let test_objective_cycles_is_executor_cycles () =
  let v = first_variant () in
  let n = 48 in
  let engine = Core.Engine.create machine in
  match
    Core.Engine.evaluate engine
      (Core.Engine.request v ~n ~mode:(Core.Executor.Budget 200_000)
         ~bindings:(List.sort compare (point v ~ti:16)))
  with
  | None -> Alcotest.fail "evaluation failed"
  | Some ev ->
    let m = ev.Core.Engine.measurement in
    Alcotest.(check (float 1e-9))
      "Cycles objective = simulated cycles" (Core.Executor.cycles m)
      (Core.Objective.score Core.Objective.Cycles machine m);
    Alcotest.(check bool)
      "Energy objective positive" true
      (Core.Objective.score Core.Objective.Energy machine m > 0.0)

(* --- derivation on the 3-level machine --- *)

let find_constraint (v : Core.Variant.t) name =
  List.find_opt
    (fun c ->
      match c with
      | Core.Constr.Poly_le { what; _ } -> what = name
      | _ -> false)
    v.Core.Variant.constraints

let test_modern_3level_derives_l3 () =
  let m3 = Machine.modern_3level in
  let vs = Core.Derive.variants m3 Kernels.Matmul.kernel in
  Alcotest.(check bool) "variants exist" true (List.length vs > 0);
  (* Some variant must carry an L3 tiling note: derivation walks every
     cache level, not just two. *)
  let has_l3 =
    List.exists
      (fun (v : Core.Variant.t) ->
        List.exists
          (fun (note : Core.Variant.level_note) -> note.Core.Variant.level = "L3")
          v.Core.Variant.notes)
      vs
  in
  Alcotest.(check bool) "L3 note present" true has_l3;
  (* Capacity bounds follow (assoc-1)/assoc * size/elem. *)
  let v = List.hd vs in
  (match find_constraint v "L1 capacity" with
  | Some (Core.Constr.Poly_le { bound; _ }) ->
    Alcotest.(check int) "L1 eff. capacity" 3584 bound
  | _ -> Alcotest.fail "missing L1 constraint");
  (match find_constraint v "L2 capacity" with
  | Some (Core.Constr.Poly_le { bound; _ }) ->
    Alcotest.(check int) "L2 eff. capacity" 28672 bound
  | _ -> Alcotest.fail "missing L2 constraint");
  match find_constraint v "L3 capacity" with
  | Some (Core.Constr.Poly_le { bound; _ }) ->
    Alcotest.(check int) "L3 eff. capacity" 983040 bound
  | _ -> Alcotest.fail "missing L3 constraint"

(* --- machine aliases --- *)

let test_machine_aliases () =
  List.iter
    (fun (alias, expected) ->
      match Machine.by_name alias with
      | Some m ->
        Alcotest.(check string) alias expected.Machine.name m.Machine.name
      | None -> Alcotest.fail (alias ^ " not resolved"))
    [
      ("modern", Machine.modern_3level);
      ("3level", Machine.modern_3level);
      ("mini", Machine.sgi_r10000_mini);
    ]

(* --- the analytical pre-filter --- *)

let small_machine = Machine.sgi_r10000_mini

let test_prefilter_reduces_simulations () =
  let kernel = Kernels.Matmul.kernel in
  let n = 48 in
  let off = Core.Eco.optimize small_machine kernel ~n in
  let on =
    Core.Eco.optimize ~prefilter:Core.Engine.default_prefilter small_machine
      kernel ~n
  in
  let fresh r = (Core.Engine.stats r.Core.Eco.engine).Core.Engine.fresh in
  let stats_on = Core.Engine.stats on.Core.Eco.engine in
  Alcotest.(check bool)
    (Printf.sprintf "fewer simulations (%d < %d)" (fresh on) (fresh off))
    true
    (fresh on < fresh off);
  Alcotest.(check bool) "skips recorded" true (stats_on.Core.Engine.prefiltered > 0);
  Alcotest.(check bool) "model evals recorded" true
    (stats_on.Core.Engine.model_evals > 0);
  (* The filtered search must still land within a reasonable band of the
     unfiltered answer. *)
  let mf r = r.Core.Eco.measurement.Core.Executor.mflops in
  Alcotest.(check bool)
    (Printf.sprintf "quality within 20%% (%.1f vs %.1f)" (mf on) (mf off))
    true
    (mf on >= 0.8 *. mf off)

let test_prefilter_off_identical () =
  (* prefilter:None is the exact historical search: same chosen point,
     same measurement, same evaluation count as the default engine. *)
  let kernel = Kernels.Matmul.kernel in
  let n = 40 in
  let a = Core.Eco.optimize small_machine kernel ~n in
  let b = Core.Eco.optimize ?prefilter:None small_machine kernel ~n in
  Alcotest.(check string) "same variant"
    a.Core.Eco.outcome.Core.Search.variant.Core.Variant.name
    b.Core.Eco.outcome.Core.Search.variant.Core.Variant.name;
  Alcotest.(check bool) "same bindings" true
    (a.Core.Eco.outcome.Core.Search.bindings
    = b.Core.Eco.outcome.Core.Search.bindings);
  Alcotest.(check (float 1e-9)) "same cycles"
    (Core.Executor.cycles a.Core.Eco.measurement)
    (Core.Executor.cycles b.Core.Eco.measurement);
  Alcotest.(check int) "same simulation count"
    (Core.Engine.stats a.Core.Eco.engine).Core.Engine.fresh
    (Core.Engine.stats b.Core.Eco.engine).Core.Engine.fresh

let test_prefilter_deterministic_across_jobs () =
  let kernel = Kernels.Matmul.kernel in
  let n = 48 in
  let run jobs =
    Core.Eco.optimize ~jobs ~prefilter:Core.Engine.default_prefilter
      small_machine kernel ~n
  in
  let a = run 1 and b = run 2 in
  Alcotest.(check bool) "same bindings at jobs 1 and 2" true
    (a.Core.Eco.outcome.Core.Search.bindings
    = b.Core.Eco.outcome.Core.Search.bindings);
  Alcotest.(check bool) "same prefetch" true
    (a.Core.Eco.outcome.Core.Search.prefetch
    = b.Core.Eco.outcome.Core.Search.prefetch);
  Alcotest.(check (float 1e-9)) "same cycles"
    (Core.Executor.cycles a.Core.Eco.measurement)
    (Core.Executor.cycles b.Core.Eco.measurement)

let test_engine_search_smoke_3level () =
  (* The engine + armed search run end to end on the 3-level machine. *)
  let r =
    Core.Eco.optimize ~prefilter:Core.Engine.default_prefilter
      Machine.modern_3level Kernels.Matmul.kernel ~n:48
  in
  Alcotest.(check bool) "positive mflops" true
    (r.Core.Eco.measurement.Core.Executor.mflops > 0.0)

let suite =
  [
    Alcotest.test_case "scale rounds flops" `Quick test_scale_rounds_flops;
    Alcotest.test_case "prediction finite" `Quick test_prediction_finite;
    Alcotest.test_case "tiling reduces predicted misses" `Quick
      test_tiling_reduces_predicted_misses;
    Alcotest.test_case "score matches objective" `Quick
      test_score_matches_objective;
    Alcotest.test_case "three-level prediction" `Quick
      test_three_level_prediction;
    Alcotest.test_case "objective cycles = executor cycles" `Quick
      test_objective_cycles_is_executor_cycles;
    Alcotest.test_case "modern_3level derives L3" `Quick
      test_modern_3level_derives_l3;
    Alcotest.test_case "machine aliases" `Quick test_machine_aliases;
    Alcotest.test_case "prefilter reduces simulations" `Quick
      test_prefilter_reduces_simulations;
    Alcotest.test_case "prefilter off identical" `Quick
      test_prefilter_off_identical;
    Alcotest.test_case "prefilter deterministic across jobs" `Quick
      test_prefilter_deterministic_across_jobs;
    Alcotest.test_case "engine search smoke on 3-level" `Quick
      test_engine_search_smoke_3level;
  ]
