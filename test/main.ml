let () =
  Alcotest.run "eco"
    [
      ("aff", Test_aff.suite);
      ("exec", Test_exec.suite);
      ("memsim", Test_memsim.suite);
      ("transform", Test_transform.suite);
      ("analysis", Test_analysis.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("baselines", Test_baselines.suite);
      ("experiments", Test_experiments.suite);
      ("random", Test_random.suite);
      ("codegen", Test_codegen.suite);
      ("check", Test_check.suite);
      ("reuse_distance", Test_reuse_distance.suite);
      ("extensions", Test_extensions.suite);
      ("wavefront", Test_wavefront.suite);
      ("attribution", Test_attribution.suite);
      ("trace", Test_trace.suite);
      ("vm", Test_vm.suite);
      ("faults", Test_faults.suite);
      ("perfdb", Test_perfdb.suite);
      ("model", Test_model.suite);
      ("replay", Test_replay.suite);
      ("serve", Test_serve.suite);
    ]
