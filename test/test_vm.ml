(* Differential tests for the bytecode fast path: the VM against the
   closure interpreter (stats, event streams, array contents), batched
   packed replay against the sink-driven hierarchy, demand-trace
   prefetch synthesis against actually transformed programs, and the
   executor/engine fast paths against the closure reference. *)

module Kernel = Kernels.Kernel
module Rng = Check.Rng
module Gen = Check.Gen
module Pipe = Check.Pipe
module Vm = Ir.Vm
module Exec = Ir.Exec

let machine = Machine.sgi_r10000

let all_kernels =
  [
    Kernels.Matmul.kernel;
    Kernels.Jacobi3d.kernel;
    Kernels.Matvec.kernel;
    Kernels.Stencil2d.kernel;
    Kernels.Wavefront.kernel;
  ]

let check_int = Alcotest.(check int)

let check_stats ctx (a : Exec.stats) (b : Exec.stats) =
  check_int (ctx ^ ": flops") a.Exec.flops b.Exec.flops;
  check_int (ctx ^ ": iterations") a.Exec.loop_iterations b.Exec.loop_iterations;
  check_int (ctx ^ ": moves") a.Exec.register_moves b.Exec.register_moves;
  check_int (ctx ^ ": spills") a.Exec.spilled_scalars b.Exec.spilled_scalars;
  Alcotest.(check bool) (ctx ^ ": completed") a.Exec.completed b.Exec.completed

let check_counters ctx (a : Memsim.Counters.t) (b : Memsim.Counters.t) =
  check_int (ctx ^ ": loads") a.Memsim.Counters.loads b.Memsim.Counters.loads;
  check_int (ctx ^ ": stores") a.Memsim.Counters.stores b.Memsim.Counters.stores;
  check_int (ctx ^ ": prefetches") a.Memsim.Counters.prefetches
    b.Memsim.Counters.prefetches;
  Alcotest.(check (array int))
    (ctx ^ ": hits") a.Memsim.Counters.hits b.Memsim.Counters.hits;
  Alcotest.(check (array int))
    (ctx ^ ": misses") a.Memsim.Counters.misses b.Memsim.Counters.misses;
  check_int (ctx ^ ": tlb misses") a.Memsim.Counters.tlb_misses
    b.Memsim.Counters.tlb_misses;
  check_int (ctx ^ ": writebacks") a.Memsim.Counters.writebacks
    b.Memsim.Counters.writebacks;
  check_int (ctx ^ ": stall cycles") a.Memsim.Counters.stall_cycles
    b.Memsim.Counters.stall_cycles;
  check_int
    (ctx ^ ": hidden cycles")
    a.Memsim.Counters.prefetch_hidden_cycles
    b.Memsim.Counters.prefetch_hidden_cycles

(* Event stream of the closure interpreter, packed the same way the VM
   packs its buffer. *)
let closure_events ?flop_budget ?register_budget ~params program =
  let trace = Memsim.Trace.create () in
  let result =
    Exec.run ~sink:(Memsim.Trace.sink trace) ?flop_budget ?register_budget
      ~params program
  in
  (result, Array.sub (Memsim.Trace.raw trace) 0 (Memsim.Trace.length trace))

let check_events ctx (expected : int array) (events : int array) n_events =
  check_int (ctx ^ ": event count") (Array.length expected) n_events;
  (* Element-wise compare without Alcotest's O(n) diff printing cost on
     the happy path. *)
  let ok = ref true in
  for i = 0 to n_events - 1 do
    if expected.(i) <> events.(i) then ok := false
  done;
  if not !ok then Alcotest.failf "%s: event streams differ" ctx

(* Run one program through the interpreter and the compute-mode VM and
   require bit-identical stats, events and array contents. *)
let differential ?(flop_budget : int option) ?register_budget ~params ctx
    program =
  let closure, expected =
    closure_events ?flop_budget ?register_budget ~params program
  in
  let vm = Vm.compile ~compute:true ?register_budget ~params program in
  let r = Vm.run ?flop_budget vm in
  check_stats ctx closure.Exec.stats r.Vm.stats;
  check_events ctx expected r.Vm.events r.Vm.n_events;
  let closure_arrays = closure.Exec.arrays in
  let vm_arrays = Vm.arrays vm in
  check_int (ctx ^ ": array count") (List.length closure_arrays)
    (List.length vm_arrays);
  List.iter2
    (fun (name_a, data_a) (name_b, data_b) ->
      Alcotest.(check string) (ctx ^ ": array name") name_a name_b;
      if data_a <> data_b then
        Alcotest.failf "%s: array %s contents differ" ctx name_a)
    closure_arrays vm_arrays;
  (* The address-only mode must emit the same stream and stats while
     allocating no float storage. *)
  let fast = Vm.compile ?register_budget ~params program in
  let rf = Vm.run ?flop_budget fast in
  check_stats (ctx ^ " [fast]") closure.Exec.stats rf.Vm.stats;
  check_events (ctx ^ " [fast]") expected rf.Vm.events rf.Vm.n_events

(* --- kernels x phase-1 variants x sampled points --- *)

let test_variants_differential () =
  List.iter
    (fun (kernel : Kernel.t) ->
      let rng = Rng.of_list [ Rng.hash_string kernel.Kernel.name; 1 ] in
      List.iter
        (fun v ->
          let n = 2 + Rng.int rng 14 in
          match Gen.point rng ~n v with
          | None -> ()
          | Some bindings -> (
            match Core.Variant.instantiate v ~bindings with
            | program ->
              let params = Kernel.params kernel n in
              let ctx = kernel.Kernel.name ^ "/" ^ v.Core.Variant.name in
              differential ~params ctx program;
              differential ~flop_budget:(max 1 (kernel.Kernel.flops n / 3))
                ~params (ctx ^ " budget") program
            | exception Invalid_argument _ -> ()))
        (Core.Derive.variants machine kernel))
    all_kernels

(* --- kernels x random transformation pipelines --- *)

let test_random_pipelines_differential () =
  List.iter
    (fun (kernel : Kernel.t) ->
      for trial = 0 to 7 do
        let rng =
          Rng.of_list [ Rng.hash_string kernel.Kernel.name; 77; trial ]
        in
        let n = Gen.size rng kernel in
        match Pipe.apply kernel (Gen.pipeline rng ~n kernel) with
        | exception Invalid_argument _ -> ()
        | program ->
          let params = Kernel.params kernel n in
          let ctx = Printf.sprintf "%s pipe %d" kernel.Kernel.name trial in
          differential ~params ~register_budget:8 ctx program
      done)
    all_kernels

(* --- warm-up cut position --- *)

(* The VM's [cut_events] must equal the event count of a separate
   closure run at the warm-up budget: that is precisely the prefix the
   closure path replays (and discards) before measuring. *)
let test_warm_cut_matches_closure_prefix () =
  let kernel = Kernels.Matmul.kernel in
  let n = 20 in
  let params = Kernel.params kernel n in
  let v = List.hd (Core.Derive.variants machine kernel) in
  let rng = Rng.of_list [ 5 ] in
  match Gen.point rng ~n v with
  | None -> Alcotest.fail "no point for matmul variant"
  | Some bindings ->
    let program = Core.Variant.instantiate v ~bindings in
    let budget = kernel.Kernel.flops n / 2 in
    let warm = max 1 (budget / 2) in
    let _, warm_events =
      closure_events ~flop_budget:warm ~params program
    in
    let vm = Vm.compile ~params program in
    let r = Vm.run ~flop_budget:budget ~warm_budget:warm vm in
    check_int "cut at warm prefix" (Array.length warm_events) r.Vm.cut_events;
    let full = Vm.run ~flop_budget:budget vm in
    check_int "full stream unaffected by warm cut" full.Vm.n_events
      r.Vm.n_events

(* --- packed replay vs the sink-driven hierarchy --- *)

let replay_machines = [ machine; Machine.ultrasparc_iie ]

let test_replay_packed_vs_sink () =
  let kernel = Kernels.Stencil2d.kernel in
  let n = 24 in
  let params = Kernel.params kernel n in
  let base = kernel.Kernel.program in
  let prefetched =
    match Transform.Prefetch_insert.candidates base with
    | [] -> base
    | a :: _ ->
      Transform.Prefetch_insert.apply base ~array:a ~distance:4
        ~line_elems:(Machine.line_elems machine 0)
  in
  List.iter
    (fun program ->
      let trace = Memsim.Trace.of_program ~params program in
      List.iter
        (fun m ->
          let by_sink = Memsim.Hierarchy.create m in
          Memsim.Trace.replay trace (Memsim.Hierarchy.sink by_sink);
          let packed = Memsim.Hierarchy.create m in
          Memsim.Trace.replay_packed trace packed;
          check_counters "replay_packed vs sink"
            (Memsim.Hierarchy.counters by_sink)
            (Memsim.Hierarchy.counters packed);
          check_int "now" (Memsim.Hierarchy.now by_sink)
            (Memsim.Hierarchy.now packed))
        replay_machines)
    [ base; prefetched ]

(* --- demand-trace prefetch synthesis --- *)

(* Synthesized streams must match executing the transformed program,
   for single- and multi-array plans, and must reproduce its warm cut. *)
let test_prefetch_synthesis () =
  let line = Machine.line_elems machine 0 in
  let register_budget = Machine.available_registers machine in
  List.iter
    (fun ((kernel : Kernel.t), n) ->
      let params = Kernel.params kernel n in
      let program = kernel.Kernel.program in
      let arrays = Transform.Prefetch_insert.candidates program in
      if arrays = [] then Alcotest.failf "%s: no candidates" kernel.Kernel.name;
      let plans =
        [
          [ (List.hd arrays, 2) ];
          List.sort compare (List.mapi (fun i a -> (a, 2 + i)) arrays);
        ]
      in
      List.iter
        (fun mode ->
          let dt = Core.Demand_trace.capture machine kernel ~n ~mode program in
          List.iter
            (fun plan ->
              let transformed =
                List.fold_left
                  (fun p (array, distance) ->
                    Transform.Prefetch_insert.apply p ~array ~distance
                      ~line_elems:line)
                  program
                  (List.sort compare plan)
              in
              let vm = Vm.compile ~register_budget ~params transformed in
              let flop_budget, warm_budget =
                match mode with
                | Core.Executor.Full -> (None, None)
                | Core.Executor.Budget b ->
                  ( Some b,
                    if b < kernel.Kernel.flops n then Some (max 1 (b / 2))
                    else None )
              in
              let r = Vm.run ?flop_budget ?warm_budget vm in
              (* Prefetch statements leave execution statistics alone, so
                 the captured stats serve every plan. *)
              check_stats
                (kernel.Kernel.name ^ ": trace stats")
                r.Vm.stats
                (Core.Demand_trace.stats dt);
              let buf = Vm.Buf.create () in
              let cut = Core.Demand_trace.synthesize dt ~plan ~into:buf in
              let ctx =
                Printf.sprintf "%s synth [%s]" kernel.Kernel.name
                  (String.concat ","
                     (List.map (fun (a, d) -> Printf.sprintf "%s:%d" a d) plan))
              in
              check_events ctx
                (Array.sub r.Vm.events 0 r.Vm.n_events)
                (Vm.Buf.data buf) (Vm.Buf.length buf);
              check_int (ctx ^ ": cut") r.Vm.cut_events cut)
            plans)
        [ Core.Executor.Full;
          Core.Executor.Budget (max 2 (kernel.Kernel.flops n / 2)) ])
    [ (Kernels.Matmul.kernel, 16); (Kernels.Jacobi3d.kernel, 8) ]

(* --- executor: fast path vs closures --- *)

let check_measurement ctx (a : Core.Executor.measurement)
    (b : Core.Executor.measurement) =
  check_stats (ctx ^ " stats") a.Core.Executor.stats b.Core.Executor.stats;
  check_counters (ctx ^ " counters") a.Core.Executor.counters
    b.Core.Executor.counters;
  Alcotest.(check (float 0.0))
    (ctx ^ " cycles")
    (Core.Executor.cycles a) (Core.Executor.cycles b);
  Alcotest.(check (float 0.0)) (ctx ^ " scale") a.Core.Executor.scale
    b.Core.Executor.scale

let test_executor_paths_agree () =
  let kernel = Kernels.Matmul.kernel in
  let n = 24 in
  let program = kernel.Kernel.program in
  List.iter
    (fun mode ->
      let fast =
        Core.Executor.measure ~path:Core.Executor.Fast machine kernel ~n ~mode
          program
      in
      let slow =
        Core.Executor.measure ~path:Core.Executor.Closures machine kernel ~n
          ~mode program
      in
      check_measurement "executor" fast slow)
    [ Core.Executor.Full; Core.Executor.Budget (kernel.Kernel.flops n / 4) ]

(* --- engine: fast path vs closures, and demand-trace reuse --- *)

let test_engine_paths_agree () =
  let kernel = Kernels.Matmul.kernel in
  let n = 32 in
  let v = List.hd (Core.Derive.variants machine kernel) in
  let bindings =
    match Core.Search.model_point machine ~n v with
    | Some b -> b
    | None -> Alcotest.fail "no model point"
  in
  let mode = Core.Executor.Budget 20_000 in
  let a, b =
    match
      Transform.Prefetch_insert.candidates
        (Core.Variant.instantiate v ~bindings)
    with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "expected two prefetch candidates"
  in
  let requests =
    [
      Core.Engine.request v ~n ~mode ~bindings;
      Core.Engine.request v ~n ~mode ~bindings ~prefetch:[ (a, 2) ];
      Core.Engine.request v ~n ~mode ~bindings ~prefetch:[ (b, 4) ];
      Core.Engine.request v ~n ~mode ~bindings ~prefetch:[ (a, 2); (b, 4) ];
    ]
  in
  let eval path =
    let engine = Core.Engine.create ~path machine in
    let evs =
      List.map
        (fun r ->
          match Core.Engine.evaluate engine r with
          | Some ev -> ev
          | None -> Alcotest.fail "evaluation failed")
        requests
    in
    (engine, evs)
  in
  let fast_engine, fast = eval Core.Executor.Fast in
  let _, slow = eval Core.Executor.Closures in
  List.iteri
    (fun i (f, s) ->
      check_measurement
        (Printf.sprintf "engine req %d" i)
        f.Core.Engine.measurement s.Core.Engine.measurement)
    (List.combine fast slow);
  (* Single-shot candidates never capture a trace (a capture costs
     more than measuring the one candidate directly); only a batched
     multi-plan group amortizes a fill. *)
  let stats = Core.Engine.stats fast_engine in
  check_int "no single-shot trace fill" 0 stats.Core.Engine.trace_fills;
  check_int "no single-shot trace hits" 0 stats.Core.Engine.trace_hits;
  (* Batch evaluation (parallel workers) matches the serial path. *)
  let batch_engine = Core.Engine.create ~jobs:3 machine in
  List.iteri
    (fun i (b, s) ->
      match b with
      | None -> Alcotest.fail "batch evaluation failed"
      | Some b ->
        check_measurement
          (Printf.sprintf "batch req %d" i)
          b.Core.Engine.measurement s.Core.Engine.measurement)
    (List.combine (Core.Engine.evaluate_batch batch_engine requests) slow);
  (* The three prefetch candidates share one bindings point, so the
     batch groups them over a single captured trace. *)
  let bstats = Core.Engine.stats batch_engine in
  check_int "one grouped trace fill" 1 bstats.Core.Engine.trace_fills

(* --- cache unit tests --- *)

let small_cache ~assoc =
  Memsim.Cache.create
    {
      Machine.name = "test";
      size_bytes = 4 * assoc * 32;
      line_bytes = 32;
      assoc;
      hit_cycles = 1;
    }

let test_cache_access_matches_lookup () =
  let probe = small_cache ~assoc:2 and fused = small_cache ~assoc:2 in
  let rng = Rng.make 31 in
  for now = 0 to 499 do
    let line = Rng.int rng 24 in
    let write = Rng.bool rng in
    let by_lookup =
      match Memsim.Cache.lookup probe ~now ~line with
      | Memsim.Cache.Hit fill ->
        if write then Memsim.Cache.set_dirty probe ~line;
        fill
      | Memsim.Cache.Miss ->
        ignore
          (Memsim.Cache.insert probe ~now ~ready:(now + 10) ~dirty:write ~line);
        Memsim.Cache.absent
    in
    let by_access = Memsim.Cache.access fused ~line ~write in
    if by_access = Memsim.Cache.absent then
      ignore (Memsim.Cache.insert fused ~now ~ready:(now + 10) ~dirty:write ~line);
    check_int "access = lookup+set_dirty" by_lookup by_access
  done;
  check_int "same occupancy" (Memsim.Cache.occupancy probe)
    (Memsim.Cache.occupancy fused)

let test_cache_insert_fills_invalid_ways_first () =
  let c = small_cache ~assoc:4 in
  (* Same set: 4 sets, so lines 0,4,8,12,16 map to set 0. *)
  for i = 0 to 3 do
    let evicted_dirty =
      Memsim.Cache.insert c ~now:i ~ready:i ~dirty:true ~line:(i * 4)
    in
    Alcotest.(check bool) "no eviction while ways free" false evicted_dirty
  done;
  check_int "all ways used" 4 (Memsim.Cache.occupancy c);
  (* A fifth line must evict the LRU (line 0, stamp 0) — and it was
     dirty, so the insert reports a writeback. *)
  Alcotest.(check bool) "LRU eviction is dirty" true
    (Memsim.Cache.insert c ~now:10 ~ready:10 ~dirty:false ~line:16);
  Alcotest.(check bool) "LRU victim gone" false
    (Memsim.Cache.resident c ~line:0);
  Alcotest.(check bool) "MRU survivor stays" true
    (Memsim.Cache.resident c ~line:12)

let test_cache_set_dirty_absent_noop () =
  let c = small_cache ~assoc:2 in
  Memsim.Cache.set_dirty c ~line:5;
  check_int "still empty" 0 (Memsim.Cache.occupancy c);
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line:5);
  Memsim.Cache.set_dirty c ~line:5;
  (* Evicting the line must now report a dirty writeback. *)
  ignore (Memsim.Cache.insert c ~now:1 ~ready:1 ~dirty:false ~line:13);
  Alcotest.(check bool) "marked dirty" true
    (Memsim.Cache.insert c ~now:2 ~ready:2 ~dirty:false ~line:21)

(* --- trace buffer reuse --- *)

let test_trace_clear_and_capacity () =
  let t = Memsim.Trace.create ~capacity:2 () in
  let sink = Memsim.Trace.sink t in
  for i = 0 to 99 do
    sink.Ir.Sink.load (8 * i)
  done;
  sink.Ir.Sink.store 0;
  check_int "length" 101 (Memsim.Trace.length t);
  check_int "loads" 100 (Memsim.Trace.loads t);
  check_int "stores" 1 (Memsim.Trace.stores t);
  Memsim.Trace.clear t;
  check_int "cleared length" 0 (Memsim.Trace.length t);
  check_int "cleared loads" 0 (Memsim.Trace.loads t);
  check_int "cleared stores" 0 (Memsim.Trace.stores t);
  sink.Ir.Sink.prefetch 16;
  check_int "reusable after clear" 1 (Memsim.Trace.prefetches t);
  check_int "packed tag" Ir.Sink.tag_prefetch
    (Ir.Sink.packed_tag (Memsim.Trace.raw t).(0));
  check_int "packed addr" 16 (Ir.Sink.packed_addr (Memsim.Trace.raw t).(0))

let suite =
  [
    Alcotest.test_case "variants: vm = interpreter" `Quick
      test_variants_differential;
    Alcotest.test_case "random pipelines: vm = interpreter" `Quick
      test_random_pipelines_differential;
    Alcotest.test_case "warm cut = closure warm prefix" `Quick
      test_warm_cut_matches_closure_prefix;
    Alcotest.test_case "replay_packed = sink replay" `Quick
      test_replay_packed_vs_sink;
    Alcotest.test_case "prefetch synthesis = transformed program" `Quick
      test_prefetch_synthesis;
    Alcotest.test_case "executor: fast = closures" `Quick
      test_executor_paths_agree;
    Alcotest.test_case "engine: fast = closures, traces reused" `Quick
      test_engine_paths_agree;
    Alcotest.test_case "cache access = lookup + set_dirty" `Quick
      test_cache_access_matches_lookup;
    Alcotest.test_case "cache insert prefers invalid ways" `Quick
      test_cache_insert_fills_invalid_ways_first;
    Alcotest.test_case "set_dirty on absent line" `Quick
      test_cache_set_dirty_absent_noop;
    Alcotest.test_case "trace clear and growth" `Quick
      test_trace_clear_and_capacity;
  ]
