(* Tier-1 tests for the differential-correctness harness: a fixed-seed
   budget over every kernel, determinism across worker counts, the
   sampler's edge cases, oracle sensitivity, shrinker minimality, and
   pinned regressions for the nastiest shrunk-but-passing edge cases. *)

module Kernel = Kernels.Kernel
module Rng = Check.Rng
module Oracle = Check.Oracle
module Pipe = Check.Pipe
module Constr = Core.Constr
module Param = Core.Param
module Poly = Analysis.Poly

let machine = Machine.sgi_r10000
let matmul = Kernels.Matmul.kernel

let all_kernels =
  [
    Kernels.Matmul.kernel;
    Kernels.Jacobi3d.kernel;
    Kernels.Matvec.kernel;
    Kernels.Stencil2d.kernel;
    Kernels.Wavefront.kernel;
  ]

(* --- PRNG --- *)

let test_rng_deterministic () =
  let stream parts =
    let rng = Rng.of_list parts in
    List.init 8 (fun _ -> Rng.int rng 1000)
  in
  Alcotest.(check (list int))
    "same parts, same stream"
    (stream [ 42; 7; 3 ])
    (stream [ 42; 7; 3 ]);
  if stream [ 42; 7; 3 ] = stream [ 42; 7; 4 ] then
    Alcotest.fail "distinct trial indices must give distinct streams"

(* --- fixed-seed budget --- *)

let test_budget_all_kernels () =
  let report = Check.run ~machine ~seed:42 ~trials:10 all_kernels in
  Alcotest.(check bool) "no failures" true (Check.ok report);
  List.iter
    (fun (k : Check.kernel_report) ->
      Alcotest.(check int) (k.kernel ^ " trials") 10 k.trials;
      Alcotest.(check int)
        (k.kernel ^ " checked+skipped")
        10
        (k.checked + k.skipped);
      if k.checked = 0 then Alcotest.failf "%s: nothing was checked" k.kernel)
    report.Check.kernels

let test_deterministic_across_jobs () =
  let run jobs =
    Check.report_to_string
      (Check.run ~machine ~jobs ~seed:9 ~trials:6
         [ matmul; Kernels.Jacobi3d.kernel ])
  in
  Alcotest.(check string) "jobs=1 vs jobs=3" (run 1) (run 3)

(* --- sampler edges --- *)

let rand_of seed =
  let rng = Rng.make seed in
  fun b -> Rng.int rng b

let test_sample_empty_system () =
  match
    Constr.sample ~rand:(rand_of 5) ~n:16 [ Param.tile "i"; Param.unroll "j" ] []
  with
  | None -> Alcotest.fail "empty system must be satisfiable"
  | Some bindings ->
    let ti = List.assoc "ti" bindings and uj = List.assoc "uj" bindings in
    if ti < 1 || ti > 16 then Alcotest.failf "ti=%d out of range" ti;
    if uj < 1 || uj > 64 then Alcotest.failf "uj=%d out of range" uj

let test_sample_contradictory () =
  let contradiction =
    Constr.Poly_le { poly = Poly.var "ti"; bound = 0; what = "impossible" }
  in
  match
    Constr.sample ~rand:(rand_of 5) ~n:16 [ Param.tile "i" ] [ contradiction ]
  with
  | None -> ()
  | Some _ -> Alcotest.fail "ti >= 1 cannot satisfy ti <= 0"

let test_sample_equality_tight () =
  (* UI * UJ <= 32: the boundary point UI=32, UJ=1 is feasible, UI=32,
     UJ=2 is not, and every sampled point must satisfy the product. *)
  let c =
    Constr.Poly_le
      {
        poly = Poly.mul (Poly.var "ui") (Poly.var "uj");
        bound = 32;
        what = "register tile";
      }
  in
  let lookup b p = try List.assoc p b with Not_found -> 16 in
  Alcotest.(check bool)
    "tight point feasible" true
    (Constr.satisfied c (lookup [ ("ui", 32); ("uj", 1) ]));
  Alcotest.(check bool)
    "over the edge infeasible" false
    (Constr.satisfied c (lookup [ ("ui", 32); ("uj", 2) ]));
  let rand = rand_of 11 in
  for _ = 1 to 50 do
    match
      Constr.sample ~rand ~n:16 [ Param.unroll "i"; Param.unroll "j" ] [ c ]
    with
    | None -> Alcotest.fail "UI*UJ <= 32 is satisfiable"
    | Some b ->
      let ui = List.assoc "ui" b and uj = List.assoc "uj" b in
      if ui * uj > 32 then Alcotest.failf "sampled infeasible ui=%d uj=%d" ui uj
  done

(* --- oracle --- *)

let test_values_match () =
  let bump f k =
    (* k ULPs above f *)
    Int64.float_of_bits (Int64.add (Int64.bits_of_float f) (Int64.of_int k))
  in
  Alcotest.(check bool)
    "within tolerance" true
    (Oracle.values_match ~max_ulps:1024 1.0 (bump 1.0 100));
  Alcotest.(check bool)
    "beyond tolerance" false
    (Oracle.values_match ~max_ulps:1024 1.0 (bump 1.0 5000));
  Alcotest.(check bool)
    "gross difference" false
    (Oracle.values_match ~max_ulps:1024 1.0 2.0);
  Alcotest.(check bool)
    "cancellation residue vs zero" true
    (Oracle.values_match ~max_ulps:1024 0.0 1e-13);
  Alcotest.(check bool)
    "NaN vs number" false
    (Oracle.values_match ~max_ulps:1024 Float.nan 1.0)

let test_compare_arrays_shape () =
  let reference = [ ("c", [| 1.0; 2.0 |]) ] in
  (match Oracle.compare_arrays ~max_ulps:1024 ~reference ~candidate:[] with
  | Oracle.Shape_error _ -> ()
  | v -> Alcotest.failf "missing array: expected shape error, got %s" (Oracle.describe v));
  (match
     Oracle.compare_arrays ~max_ulps:1024 ~reference
       ~candidate:[ ("c", [| 1.0 |]) ]
   with
  | Oracle.Shape_error _ -> ()
  | v -> Alcotest.failf "short array: expected shape error, got %s" (Oracle.describe v));
  match
    Oracle.compare_arrays ~max_ulps:1024 ~reference
      ~candidate:[ ("c", [| 1.0; 2.0 |]); ("p_b", [| 9.0 |]) ]
  with
  | Oracle.Agree -> ()
  | v -> Alcotest.failf "extra temp must be ignored, got %s" (Oracle.describe v)

let test_oracle_catches_dropped_computation () =
  (* A candidate that performs no work leaves every array at its initial
     values; the oracle must flag the divergence. *)
  let empty =
    Ir.Program.with_body matmul.Kernel.program []
  in
  match Oracle.check_program matmul ~n:6 empty with
  | Oracle.Differ m ->
    Alcotest.(check string) "diverging array" "c" m.Oracle.array
  | v -> Alcotest.failf "expected Differ, got %s" (Oracle.describe v)

(* --- shrinking --- *)

let test_shrink_point_minimal () =
  (* Failure region: u >= 3 and n >= 5; the shrinker must land exactly
     on its lower-left corner with the irrelevant binding at 1. *)
  let fails b n = List.assoc "u" b >= 3 && n >= 5 in
  let bindings, n =
    Check.Shrink.point ~fails ~min_n:2
      ~bindings:[ ("u", 10); ("t", 9) ]
      ~n:13
  in
  Alcotest.(check int) "u minimized" 3 (List.assoc "u" bindings);
  Alcotest.(check int) "t cleared" 1 (List.assoc "t" bindings);
  Alcotest.(check int) "n minimized" 5 n

let test_shrink_pipeline_minimal () =
  (* Only the presence of an Unroll step matters; every other step must
     be dropped and the factor driven to 1. *)
  let fails p n =
    n >= 4 && List.exists (function Pipe.Unroll _ -> true | _ -> false) p
  in
  let pipe =
    [
      Pipe.Tile [ ("i", 5) ];
      Pipe.Copy "b";
      Pipe.Unroll ("j", 4);
      Pipe.Scalar_replace;
    ]
  in
  let pipe, n = Check.Shrink.pipeline ~fails ~min_n:2 ~pipe ~n:13 in
  Alcotest.(check string)
    "pipe minimized" "unroll:j=1"
    (Pipe.to_string pipe);
  Alcotest.(check int) "n minimized" 4 n

(* --- pinned edge-case regressions ---

   The three nastiest cases the harness exercises, pinned at fixed
   parameters so a future transformation change that breaks one fails
   here with an immediate repro. *)

let check_agrees name kernel spec n =
  match Check.check_pipe kernel ~pipe:(Pipe.of_string spec) ~n with
  | Oracle.Agree -> ()
  | v ->
    Alcotest.failf "%s: pipeline '%s' at n=%d: %s" name spec n
      (Oracle.describe v)

let test_pin_non_dividing_tile () =
  (* 5 and 7 do not divide 13: every tile footer is a partial tile. *)
  check_agrees "non-dividing tile" matmul "tile:i=5,j=7" 13

let test_pin_unroll_beyond_trip_count () =
  (* Factor exceeds the trip count: the unrolled loop body is dead and
     the epilogue performs the entire computation. *)
  check_agrees "unroll > trip" matmul "unroll:j=7" 4

let test_pin_clipped_copy_at_boundary () =
  (* The final 5-wide copy tile hangs over the 13-element array edge and
     must be clipped, not read out of bounds. *)
  check_agrees "clipped copy" matmul "tile:i=5,j=5,k=5;copy:b" 13

(* --- plumbing round-trips --- *)

let test_pipe_roundtrip () =
  let s = "permute:i,k,j;tile:j=5,k=7;copy:b;unroll:i=4;scalar;prefetch:a=2" in
  Alcotest.(check string) "string round-trip" s (Pipe.to_string (Pipe.of_string s));
  let p = Pipe.of_string s in
  if Pipe.of_string (Pipe.to_string p) <> p then
    Alcotest.fail "pipe round-trip"

let test_parse_bindings () =
  Alcotest.(check (list (pair string int)))
    "parse" [ ("ui", 4); ("tj", 8) ]
    (Check.parse_bindings "ui=4,tj=8");
  Alcotest.(check string)
    "round-trip" "ui=4,tj=8"
    (Check.bindings_to_string (Check.parse_bindings "ui=4, tj=8"));
  match Check.parse_bindings "ui=x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-integer"

let test_validate_winner () =
  (* tune --validate's core: the all-ones point of any derived variant
     agrees with the reference at the capped sizes. *)
  let variant = List.hd (Core.Derive.variants machine matmul) in
  let bindings =
    List.map (fun (p : Param.t) -> (p.Param.name, 1)) (Core.Variant.params variant)
  in
  let results =
    Check.validate ~machine variant ~bindings ~prefetch:[] ~n:100
  in
  if results = [] then Alcotest.fail "validate must check at least one size";
  List.iter
    (fun (size, verdict) ->
      if size > 31 then Alcotest.failf "size %d above the cap" size;
      if not (Oracle.agrees verdict) then
        Alcotest.failf "n=%d: %s" size (Oracle.describe verdict))
    results

let suite =
  [
    Alcotest.test_case "rng: deterministic streams" `Quick test_rng_deterministic;
    Alcotest.test_case "budget: seed 42 over all kernels" `Quick
      test_budget_all_kernels;
    Alcotest.test_case "budget: identical report at any jobs" `Quick
      test_deterministic_across_jobs;
    Alcotest.test_case "sample: empty system" `Quick test_sample_empty_system;
    Alcotest.test_case "sample: contradictory bounds" `Quick
      test_sample_contradictory;
    Alcotest.test_case "sample: equality-tight product" `Quick
      test_sample_equality_tight;
    Alcotest.test_case "oracle: ULP tolerance" `Quick test_values_match;
    Alcotest.test_case "oracle: shape errors" `Quick test_compare_arrays_shape;
    Alcotest.test_case "oracle: dropped computation" `Quick
      test_oracle_catches_dropped_computation;
    Alcotest.test_case "shrink: point to minimal corner" `Quick
      test_shrink_point_minimal;
    Alcotest.test_case "shrink: pipeline to single step" `Quick
      test_shrink_pipeline_minimal;
    Alcotest.test_case "pin: non-dividing tile" `Quick test_pin_non_dividing_tile;
    Alcotest.test_case "pin: unroll beyond trip count" `Quick
      test_pin_unroll_beyond_trip_count;
    Alcotest.test_case "pin: clipped copy at array boundary" `Quick
      test_pin_clipped_copy_at_boundary;
    Alcotest.test_case "pipe: spec round-trip" `Quick test_pipe_roundtrip;
    Alcotest.test_case "bindings: parse/print" `Quick test_parse_bindings;
    Alcotest.test_case "validate: winning point agrees" `Quick
      test_validate_winner;
  ]
