(* Tests for the evaluation engine: memoization identity, fingerprint
   discrimination, serial/parallel equivalence and telemetry. *)

module Matmul = Kernels.Matmul

let sgi = Machine.sgi_r10000
let fast = Core.Executor.Budget 30_000

let variant () = List.hd (Core.Derive.variants sgi Matmul.kernel)

let some_point engine v ~n =
  match Core.Search.model_point (Core.Engine.machine engine) ~n v with
  | Some bindings -> bindings
  | None -> Alcotest.fail "no model point for test variant"

(* --- memoization --- *)

let test_cache_hit_identical () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  let req = Core.Engine.request v ~n:48 ~mode:fast ~bindings in
  let first =
    match Core.Engine.evaluate engine req with
    | Some ev -> ev
    | None -> Alcotest.fail "first evaluation failed"
  in
  Alcotest.(check bool) "first is fresh" false first.Core.Engine.cached;
  let second =
    match Core.Engine.evaluate engine req with
    | Some ev -> ev
    | None -> Alcotest.fail "second evaluation failed"
  in
  Alcotest.(check bool) "second is cached" true second.Core.Engine.cached;
  (* The memo must return the very same measurement, not a re-run. *)
  Alcotest.(check bool) "identical measurement" true
    (first.Core.Engine.measurement == second.Core.Engine.measurement);
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "one fresh" 1 s.Core.Engine.fresh;
  Alcotest.(check int) "one hit" 1 s.Core.Engine.hits

let test_distinct_fingerprints_miss () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  let req = Core.Engine.request v ~n:48 ~mode:fast ~bindings in
  ignore (Core.Engine.evaluate engine req);
  (* Different mode, different bindings, different prefetch: all misses. *)
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request v ~n:48 ~mode:(Core.Executor.Budget 60_000) ~bindings));
  let bumped =
    match bindings with
    | (k, x) :: rest -> (k, max 1 (x / 2)) :: rest
    | [] -> []
  in
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request v ~n:48 ~mode:fast ~bindings:bumped));
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request ~prefetch:[ ("a", 4) ] v ~n:48 ~mode:fast ~bindings));
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "no hits across distinct fingerprints" 0
    s.Core.Engine.hits;
  Alcotest.(check int) "four fresh evaluations" 4 s.Core.Engine.fresh

let test_binding_order_canonical () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  ignore
    (Core.Engine.evaluate engine (Core.Engine.request v ~n:48 ~mode:fast ~bindings));
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request v ~n:48 ~mode:fast ~bindings:(List.rev bindings)));
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "reversed bindings hit the memo" 1 s.Core.Engine.hits

(* --- parallel equivalence --- *)

let tune_with_jobs jobs =
  let r = Core.Eco.optimize ~mode:fast ~jobs sgi Matmul.kernel ~n:32 in
  let o = r.Core.Eco.outcome in
  ( o.Core.Search.variant.Core.Variant.name,
    o.Core.Search.bindings,
    o.Core.Search.prefetch,
    Core.Executor.cycles r.Core.Eco.measurement )

let test_jobs_same_best () =
  let serial = tune_with_jobs 1 in
  let parallel = tune_with_jobs 4 in
  Alcotest.(check bool) "jobs=1 and jobs=4 find the same best point" true
    (serial = parallel)

let test_batch_matches_serial_evaluates () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  (* Four distinct sizes with jobs:2 crosses the engine's small-batch
     threshold, so this exercises the actual Domain.spawn path. *)
  let reqs =
    List.concat_map
      (fun n ->
        [
          Core.Engine.request v ~n ~mode:fast ~bindings;
          (* duplicate within the batch *)
          Core.Engine.request v ~n ~mode:fast ~bindings;
        ])
      [ 24; 32; 40; 48 ]
  in
  let cycles evs =
    List.map
      (function
        | Some (ev : Core.Engine.evaluation) ->
          Core.Executor.cycles ev.Core.Engine.measurement
        | None -> nan)
      evs
  in
  let batch_engine = Core.Engine.create ~jobs:2 sgi in
  let batched = cycles (Core.Engine.evaluate_batch batch_engine reqs) in
  let serial_engine = Core.Engine.create sgi in
  let serial = cycles (List.map (Core.Engine.evaluate serial_engine) reqs) in
  Alcotest.(check (list (float 0.0))) "batched = serial" serial batched;
  (* Counters agree exactly; eval_seconds is wall time and can't. *)
  let counters e =
    let s = Core.Engine.stats e in
    ( s.Core.Engine.hits,
      s.Core.Engine.fresh,
      s.Core.Engine.pruned,
      s.Core.Engine.failed,
      s.Core.Engine.simulated_cycles )
  in
  Alcotest.(check bool) "same counters" true
    (counters batch_engine = counters serial_engine)

(* --- telemetry --- *)

let test_telemetry_adds_up () =
  let engine = Core.Engine.create sgi in
  let log = Core.Search_log.create () in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  let infeasible = List.map (fun (k, _) -> (k, 48)) bindings in
  let reqs =
    [
      Core.Engine.request v ~n:48 ~mode:fast ~bindings;
      Core.Engine.request v ~n:48 ~mode:fast ~bindings (* hit *);
      Core.Engine.request v ~n:48 ~mode:fast ~bindings:infeasible (* pruned *);
    ]
  in
  let evs = Core.Engine.evaluate_batch engine ~log reqs in
  Alcotest.(check int) "three answers" 3 (List.length evs);
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "fresh" 1 s.Core.Engine.fresh;
  Alcotest.(check int) "hits" 1 s.Core.Engine.hits;
  Alcotest.(check int) "pruned" 1 s.Core.Engine.pruned;
  (* Engine counters and log counters agree, and the log's [points]
     counts only fresh evaluations. *)
  Alcotest.(check int) "log fresh = engine fresh" s.Core.Engine.fresh
    (Core.Search_log.fresh log);
  Alcotest.(check int) "log hits = engine hits" s.Core.Engine.hits
    (Core.Search_log.hits log);
  Alcotest.(check int) "log pruned = engine pruned" s.Core.Engine.pruned
    (Core.Search_log.pruned log);
  Alcotest.(check int) "points exclude memo hits" 1
    (Core.Search_log.points log);
  Alcotest.(check bool) "simulated cycles positive" true
    (s.Core.Engine.simulated_cycles > 0.0)

let test_measure_program_memoizes () =
  let engine = Core.Engine.create sgi in
  let p = Matmul.kernel.Kernels.Kernel.program in
  let m1 = Core.Engine.measure_program engine Matmul.kernel ~n:24 ~mode:fast p in
  let m2 = Core.Engine.measure_program engine Matmul.kernel ~n:24 ~mode:fast p in
  Alcotest.(check bool) "same measurement object" true (m1 == m2);
  let m3 = Core.Engine.measure_program engine Matmul.kernel ~n:16 ~mode:fast p in
  Alcotest.(check bool) "different size is a fresh run" true (m1 != m3);
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "two fresh" 2 s.Core.Engine.fresh;
  Alcotest.(check int) "one hit" 1 s.Core.Engine.hits

(* --- persistent performance database --- *)

let temp_db () =
  let file = Filename.temp_file "eco_test_engine" ".db" in
  Sys.remove file;
  file

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc buf;
  close_out oc

let answer (r : Core.Eco.result) =
  let o = r.Core.Eco.outcome in
  ( o.Core.Search.variant.Core.Variant.name,
    o.Core.Search.bindings,
    o.Core.Search.prefetch,
    Core.Executor.cycles r.Core.Eco.measurement )

let log_points (r : Core.Eco.result) =
  List.map
    (fun (e : Core.Search_log.entry) ->
      ( e.Core.Search_log.variant,
        e.Core.Search_log.bindings,
        e.Core.Search_log.prefetch,
        e.Core.Search_log.cycles ))
    (Core.Search_log.entries r.Core.Eco.log)

(* An engine with an EMPTY (or absent) database attached must search
   byte-identically to one with no database at all: same answer, same
   candidate sequence, same fresh count. *)
let test_empty_db_byte_identical () =
  let bare = Core.Engine.create ~prefilter:Core.Engine.default_prefilter sgi in
  let r_bare = Core.Eco.optimize_with ~mode:fast bare Matmul.kernel ~n:24 in
  let file = temp_db () in
  let db = Perfdb.load file in
  let dbed = Core.Engine.create ~prefilter:Core.Engine.default_prefilter sgi in
  Core.Engine.set_db dbed db;
  let r_db = Core.Eco.optimize_with ~mode:fast dbed Matmul.kernel ~n:24 in
  Perfdb.close db;
  Alcotest.(check bool) "same answer" true (answer r_bare = answer r_db);
  Alcotest.(check bool) "same candidate sequence" true
    (log_points r_bare = log_points r_db);
  Alcotest.(check int) "same fresh count"
    (Core.Engine.stats bare).Core.Engine.fresh
    (Core.Engine.stats dbed).Core.Engine.fresh;
  Alcotest.(check int) "no warm seeds from an empty store" 0
    (Core.Engine.stats dbed).Core.Engine.warm_starts;
  Sys.remove file

let populate file ~n =
  let db = Perfdb.load file in
  let eng = Core.Engine.create ~prefilter:Core.Engine.default_prefilter sgi in
  Core.Engine.set_db eng db;
  let r = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n in
  Perfdb.close db;
  (answer r, (Core.Engine.stats eng).Core.Engine.fresh)

(* Warm-started searches are deterministic under parallel evaluation:
   jobs=1 and jobs=4 against identical copies of a populated store
   agree bit-for-bit.  (Each run gets its own copy: a warm run appends
   its measurements and summary as it goes, so sharing one file would
   hand the second run a different donor.) *)
let test_warm_start_jobs_identical () =
  let file = temp_db () in
  let _ = populate file ~n:24 in
  let run jobs =
    let copy = temp_db () in
    copy_file file copy;
    let db = Perfdb.load copy in
    let eng =
      Core.Engine.create ~jobs ~prefilter:Core.Engine.default_prefilter sgi
    in
    Core.Engine.set_db eng db;
    let r = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 in
    Perfdb.close db;
    Sys.remove copy;
    (answer r, log_points r, (Core.Engine.stats eng).Core.Engine.warm_starts)
  in
  let a1, l1, w1 = run 1 in
  let a4, l4, w4 = run 4 in
  Alcotest.(check bool) "jobs=1 = jobs=4 answer" true (a1 = a4);
  Alcotest.(check bool) "jobs=1 = jobs=4 candidates" true (l1 = l4);
  Alcotest.(check bool) "warm seeds transferred" true (w1 > 0 && w1 = w4);
  Sys.remove file

(* With warm-starting disabled, a fully-populated store replays the
   original search without a single fresh simulation — and lands on the
   same answer. *)
let test_no_warm_start_full_replay () =
  let file = temp_db () in
  let ans0, fresh0 = populate file ~n:24 in
  let db = Perfdb.load file in
  let eng = Core.Engine.create ~prefilter:Core.Engine.default_prefilter sgi in
  Core.Engine.set_db eng ~warm_start:false db;
  let r = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:24 in
  Perfdb.close db;
  let s = Core.Engine.stats eng in
  Alcotest.(check bool) "identical answer" true (answer r = ans0);
  Alcotest.(check int) "zero fresh simulations" 0 s.Core.Engine.fresh;
  Alcotest.(check int) "every simulation served from the store" fresh0
    s.Core.Engine.db_hits;
  Sys.remove file

(* --no-warm-start with only other-size records on file restores the
   plain search path exactly: no exact hits, no seeds, same trajectory. *)
let test_no_warm_start_restores_plain_path () =
  let file = temp_db () in
  let _ = populate file ~n:24 in
  let bare = Core.Engine.create ~prefilter:Core.Engine.default_prefilter sgi in
  let r_bare = Core.Eco.optimize_with ~mode:fast bare Matmul.kernel ~n:32 in
  let db = Perfdb.load file in
  let eng = Core.Engine.create ~prefilter:Core.Engine.default_prefilter sgi in
  Core.Engine.set_db eng ~warm_start:false db;
  let r = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 in
  Perfdb.close db;
  let s = Core.Engine.stats eng in
  Alcotest.(check bool) "same answer as the no-db search" true
    (answer r = answer r_bare);
  Alcotest.(check bool) "same candidate sequence" true
    (log_points r = log_points r_bare);
  Alcotest.(check int) "no exact hits across sizes" 0 s.Core.Engine.db_hits;
  Alcotest.(check int) "no warm seeds" 0 s.Core.Engine.warm_starts;
  Sys.remove file

(* Warm-start x fault protocol x kill/resume: a DB-backed faulty run
   killed mid-search and resumed lands on the uninterrupted run's
   answer, and the store picks up no duplicate records along the way. *)
let test_warm_start_fault_kill_resume () =
  let faults () = Faults.make ~seed:7 ~noise:0.02 ~outlier:0.05 () in
  let protocol = { Core.Engine.default_protocol with trials = 3 } in
  let mk file =
    let db = Perfdb.load file in
    let eng =
      Core.Engine.create ~faults:(faults ()) ~protocol
        ~prefilter:Core.Engine.default_prefilter sgi
    in
    Core.Engine.set_db eng db;
    (eng, db)
  in
  let file1 = temp_db () in
  (* Populate under the same fault plan the tuned runs use. *)
  let eng, db = mk file1 in
  let _ = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:24 in
  Perfdb.close db;
  let file2 = temp_db () in
  copy_file file1 file2;
  let ck = Filename.temp_file "eco_test_engine_ck" ".bin" in
  let tag = "dbtest|matmul|n=32" in
  (* Killed run against file1... *)
  let eng, db = mk file1 in
  Core.Engine.set_checkpoint eng ~every:2 ~tag ck;
  Core.Engine.set_eval_limit eng 8;
  (match Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 with
  | exception Core.Engine.Eval_limit_reached 8 -> ()
  | _ -> Alcotest.fail "expected the injected kill");
  Perfdb.close db;
  (* ...resumed to completion. *)
  let eng, db = mk file1 in
  Core.Engine.set_checkpoint eng ~every:2 ~tag ck;
  (match Core.Engine.load_checkpoint eng ~tag ck with
  | None -> Alcotest.fail "checkpoint did not load"
  | Some _ -> ());
  let r_resumed = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 in
  Perfdb.close db;
  (* Uninterrupted reference against the pristine copy. *)
  let eng, db = mk file2 in
  let r_plain = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 in
  Perfdb.close db;
  Alcotest.(check bool) "resumed answer = uninterrupted answer" true
    (answer r_resumed = answer r_plain);
  (* No double-appended records: every frame on file is a distinct
     live record — the measurements the killed run appended were not
     re-appended when the resumed run re-encountered those candidates.
     Exactly two summary frames exist (the populate run's n=24 and the
     resumed run's n=32; the killed run died before writing one), so
     frames = distinct measurement keys + 2. *)
  let db = Perfdb.load file1 in
  let st = Perfdb.stat db in
  Perfdb.close db;
  Alcotest.(check int) "every frame is a distinct record"
    (st.Perfdb.measurements + 2) st.Perfdb.file_records;
  Sys.remove file1;
  Sys.remove file2;
  Sys.remove ck

(* Sampling x db x checkpoint: the three persistence/estimation layers
   compose.  A sampled, DB-backed, checkpointed run killed mid-search
   and resumed must land on the uninterrupted run's answer, with no
   double-appended store frames (the resume replays candidates the dead
   run already appended) and nothing but exact records on file (sampled
   estimates never persist). *)
let test_sample_db_checkpoint_compose () =
  let mk file =
    let db = Perfdb.load file in
    let eng = Core.Engine.create sgi in
    Core.Engine.set_sampling eng (Some Memsim.Sampling.default);
    Core.Engine.set_db eng ~warm_start:false db;
    (eng, db)
  in
  let file1 = temp_db () and file2 = temp_db () in
  let ck = Filename.temp_file "eco_test_engine_ck3" ".bin" in
  let tag = "compose|matmul|n=32|sampled|exact-db" in
  (* Killed mid-search... *)
  let eng, db = mk file1 in
  Core.Engine.set_checkpoint eng ~every:2 ~tag ck;
  Core.Engine.set_eval_limit eng 10;
  (match Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 with
  | exception Core.Engine.Eval_limit_reached 10 -> ()
  | _ -> Alcotest.fail "expected the injected kill");
  Perfdb.close db;
  (* ...resumed against the same store and checkpoint. *)
  let eng, db = mk file1 in
  Core.Engine.set_checkpoint eng ~every:2 ~tag ck;
  (match Core.Engine.load_checkpoint eng ~tag ck with
  | None -> Alcotest.fail "checkpoint did not load"
  | Some _ -> ());
  let r_resumed = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 in
  Perfdb.close db;
  (* Uninterrupted reference against a virgin store. *)
  let eng, db = mk file2 in
  let r_plain = Core.Eco.optimize_with ~mode:fast eng Matmul.kernel ~n:32 in
  Perfdb.close db;
  Alcotest.(check bool) "resumed sampled answer = uninterrupted answer" true
    (answer r_resumed = answer r_plain);
  let stat file =
    let db = Perfdb.load file in
    let st = Perfdb.stat db in
    Perfdb.close db;
    st
  in
  let st1 = stat file1 and st2 = stat file2 in
  (* every frame on file is a distinct live record: nothing was
     appended twice across the kill/resume boundary *)
  Alcotest.(check int) "no double-appended frames"
    (st1.Perfdb.measurements + st1.Perfdb.summaries)
    st1.Perfdb.file_records;
  Alcotest.(check int) "kill/resume stores the same exact records"
    st2.Perfdb.measurements st1.Perfdb.measurements;
  Sys.remove file1;
  Sys.remove file2;
  Sys.remove ck

(* Quarantined / failed candidates must never be persisted: only
   aggregated successful measurements reach the store. *)
let test_quarantine_never_persisted () =
  let file = temp_db () in
  let db = Perfdb.load file in
  let faults = Faults.make ~seed:2 ~transient:1.0 () in
  let engine = Core.Engine.create ~faults sgi in
  Core.Engine.set_db engine db;
  let v = variant () in
  let bindings = some_point engine v ~n:32 in
  let req = Core.Engine.request v ~n:32 ~mode:fast ~bindings in
  Alcotest.(check bool) "candidate quarantined" true
    (Core.Engine.evaluate engine req = None);
  (match Core.Engine.explain engine req with
  | `Failed Core.Engine.Quarantined -> ()
  | _ -> Alcotest.fail "expected a quarantined candidate");
  let st = Perfdb.stat db in
  Alcotest.(check int) "no measurement records" 0 st.Perfdb.measurements;
  Alcotest.(check int) "nothing appended" 0 st.Perfdb.appended;
  Perfdb.close db;
  (* And the file itself holds nothing to serve on reload. *)
  let db2 = Perfdb.load file in
  let st2 = Perfdb.stat db2 in
  Alcotest.(check int) "empty on reload" 0 st2.Perfdb.file_records;
  Perfdb.close db2;
  try Sys.remove file with Sys_error _ -> ()

let suite =
  [
    Alcotest.test_case "cache hit returns identical measurement" `Quick
      test_cache_hit_identical;
    Alcotest.test_case "distinct fingerprints miss" `Quick
      test_distinct_fingerprints_miss;
    Alcotest.test_case "binding order is canonicalized" `Quick
      test_binding_order_canonical;
    Alcotest.test_case "jobs=1 and jobs=4 agree on best" `Quick
      test_jobs_same_best;
    Alcotest.test_case "batch matches serial evaluation" `Quick
      test_batch_matches_serial_evaluates;
    Alcotest.test_case "telemetry counters add up" `Quick
      test_telemetry_adds_up;
    Alcotest.test_case "measure_program memoizes" `Quick
      test_measure_program_memoizes;
    Alcotest.test_case "empty db searches byte-identically" `Quick
      test_empty_db_byte_identical;
    Alcotest.test_case "warm start: jobs=1 = jobs=4" `Quick
      test_warm_start_jobs_identical;
    Alcotest.test_case "no-warm-start replays with zero fresh sims" `Quick
      test_no_warm_start_full_replay;
    Alcotest.test_case "no-warm-start restores the plain path" `Quick
      test_no_warm_start_restores_plain_path;
    Alcotest.test_case "warm start x faults x kill/resume" `Quick
      test_warm_start_fault_kill_resume;
    Alcotest.test_case "sampling x db x checkpoint kill/resume" `Quick
      test_sample_db_checkpoint_compose;
    Alcotest.test_case "quarantined candidates never persisted" `Quick
      test_quarantine_never_persisted;
  ]
