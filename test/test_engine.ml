(* Tests for the evaluation engine: memoization identity, fingerprint
   discrimination, serial/parallel equivalence and telemetry. *)

module Matmul = Kernels.Matmul

let sgi = Machine.sgi_r10000
let fast = Core.Executor.Budget 30_000

let variant () = List.hd (Core.Derive.variants sgi Matmul.kernel)

let some_point engine v ~n =
  match Core.Search.model_point (Core.Engine.machine engine) ~n v with
  | Some bindings -> bindings
  | None -> Alcotest.fail "no model point for test variant"

(* --- memoization --- *)

let test_cache_hit_identical () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  let req = Core.Engine.request v ~n:48 ~mode:fast ~bindings in
  let first =
    match Core.Engine.evaluate engine req with
    | Some ev -> ev
    | None -> Alcotest.fail "first evaluation failed"
  in
  Alcotest.(check bool) "first is fresh" false first.Core.Engine.cached;
  let second =
    match Core.Engine.evaluate engine req with
    | Some ev -> ev
    | None -> Alcotest.fail "second evaluation failed"
  in
  Alcotest.(check bool) "second is cached" true second.Core.Engine.cached;
  (* The memo must return the very same measurement, not a re-run. *)
  Alcotest.(check bool) "identical measurement" true
    (first.Core.Engine.measurement == second.Core.Engine.measurement);
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "one fresh" 1 s.Core.Engine.fresh;
  Alcotest.(check int) "one hit" 1 s.Core.Engine.hits

let test_distinct_fingerprints_miss () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  let req = Core.Engine.request v ~n:48 ~mode:fast ~bindings in
  ignore (Core.Engine.evaluate engine req);
  (* Different mode, different bindings, different prefetch: all misses. *)
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request v ~n:48 ~mode:(Core.Executor.Budget 60_000) ~bindings));
  let bumped =
    match bindings with
    | (k, x) :: rest -> (k, max 1 (x / 2)) :: rest
    | [] -> []
  in
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request v ~n:48 ~mode:fast ~bindings:bumped));
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request ~prefetch:[ ("a", 4) ] v ~n:48 ~mode:fast ~bindings));
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "no hits across distinct fingerprints" 0
    s.Core.Engine.hits;
  Alcotest.(check int) "four fresh evaluations" 4 s.Core.Engine.fresh

let test_binding_order_canonical () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  ignore
    (Core.Engine.evaluate engine (Core.Engine.request v ~n:48 ~mode:fast ~bindings));
  ignore
    (Core.Engine.evaluate engine
       (Core.Engine.request v ~n:48 ~mode:fast ~bindings:(List.rev bindings)));
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "reversed bindings hit the memo" 1 s.Core.Engine.hits

(* --- parallel equivalence --- *)

let tune_with_jobs jobs =
  let r = Core.Eco.optimize ~mode:fast ~jobs sgi Matmul.kernel ~n:32 in
  let o = r.Core.Eco.outcome in
  ( o.Core.Search.variant.Core.Variant.name,
    o.Core.Search.bindings,
    o.Core.Search.prefetch,
    Core.Executor.cycles r.Core.Eco.measurement )

let test_jobs_same_best () =
  let serial = tune_with_jobs 1 in
  let parallel = tune_with_jobs 4 in
  Alcotest.(check bool) "jobs=1 and jobs=4 find the same best point" true
    (serial = parallel)

let test_batch_matches_serial_evaluates () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  (* Four distinct sizes with jobs:2 crosses the engine's small-batch
     threshold, so this exercises the actual Domain.spawn path. *)
  let reqs =
    List.concat_map
      (fun n ->
        [
          Core.Engine.request v ~n ~mode:fast ~bindings;
          (* duplicate within the batch *)
          Core.Engine.request v ~n ~mode:fast ~bindings;
        ])
      [ 24; 32; 40; 48 ]
  in
  let cycles evs =
    List.map
      (function
        | Some (ev : Core.Engine.evaluation) ->
          Core.Executor.cycles ev.Core.Engine.measurement
        | None -> nan)
      evs
  in
  let batch_engine = Core.Engine.create ~jobs:2 sgi in
  let batched = cycles (Core.Engine.evaluate_batch batch_engine reqs) in
  let serial_engine = Core.Engine.create sgi in
  let serial = cycles (List.map (Core.Engine.evaluate serial_engine) reqs) in
  Alcotest.(check (list (float 0.0))) "batched = serial" serial batched;
  (* Counters agree exactly; eval_seconds is wall time and can't. *)
  let counters e =
    let s = Core.Engine.stats e in
    ( s.Core.Engine.hits,
      s.Core.Engine.fresh,
      s.Core.Engine.pruned,
      s.Core.Engine.failed,
      s.Core.Engine.simulated_cycles )
  in
  Alcotest.(check bool) "same counters" true
    (counters batch_engine = counters serial_engine)

(* --- telemetry --- *)

let test_telemetry_adds_up () =
  let engine = Core.Engine.create sgi in
  let log = Core.Search_log.create () in
  let v = variant () in
  let bindings = some_point engine v ~n:48 in
  let infeasible = List.map (fun (k, _) -> (k, 48)) bindings in
  let reqs =
    [
      Core.Engine.request v ~n:48 ~mode:fast ~bindings;
      Core.Engine.request v ~n:48 ~mode:fast ~bindings (* hit *);
      Core.Engine.request v ~n:48 ~mode:fast ~bindings:infeasible (* pruned *);
    ]
  in
  let evs = Core.Engine.evaluate_batch engine ~log reqs in
  Alcotest.(check int) "three answers" 3 (List.length evs);
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "fresh" 1 s.Core.Engine.fresh;
  Alcotest.(check int) "hits" 1 s.Core.Engine.hits;
  Alcotest.(check int) "pruned" 1 s.Core.Engine.pruned;
  (* Engine counters and log counters agree, and the log's [points]
     counts only fresh evaluations. *)
  Alcotest.(check int) "log fresh = engine fresh" s.Core.Engine.fresh
    (Core.Search_log.fresh log);
  Alcotest.(check int) "log hits = engine hits" s.Core.Engine.hits
    (Core.Search_log.hits log);
  Alcotest.(check int) "log pruned = engine pruned" s.Core.Engine.pruned
    (Core.Search_log.pruned log);
  Alcotest.(check int) "points exclude memo hits" 1
    (Core.Search_log.points log);
  Alcotest.(check bool) "simulated cycles positive" true
    (s.Core.Engine.simulated_cycles > 0.0)

let test_measure_program_memoizes () =
  let engine = Core.Engine.create sgi in
  let p = Matmul.kernel.Kernels.Kernel.program in
  let m1 = Core.Engine.measure_program engine Matmul.kernel ~n:24 ~mode:fast p in
  let m2 = Core.Engine.measure_program engine Matmul.kernel ~n:24 ~mode:fast p in
  Alcotest.(check bool) "same measurement object" true (m1 == m2);
  let m3 = Core.Engine.measure_program engine Matmul.kernel ~n:16 ~mode:fast p in
  Alcotest.(check bool) "different size is a fresh run" true (m1 != m3);
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "two fresh" 2 s.Core.Engine.fresh;
  Alcotest.(check int) "one hit" 1 s.Core.Engine.hits

let suite =
  [
    Alcotest.test_case "cache hit returns identical measurement" `Quick
      test_cache_hit_identical;
    Alcotest.test_case "distinct fingerprints miss" `Quick
      test_distinct_fingerprints_miss;
    Alcotest.test_case "binding order is canonicalized" `Quick
      test_binding_order_canonical;
    Alcotest.test_case "jobs=1 and jobs=4 agree on best" `Quick
      test_jobs_same_best;
    Alcotest.test_case "batch matches serial evaluation" `Quick
      test_batch_matches_serial_evaluates;
    Alcotest.test_case "telemetry counters add up" `Quick
      test_telemetry_adds_up;
    Alcotest.test_case "measure_program memoizes" `Quick
      test_measure_program_memoizes;
  ]
