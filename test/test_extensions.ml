(* Tests for the extension modules: padding, miss classification,
   random search, and the strategy/conflict/padding experiments. *)

module Kernel = Kernels.Kernel
module Matmul = Kernels.Matmul

let fast = Core.Executor.Budget 30_000

(* --- Pad --- *)

let test_pad_changes_dims () =
  let p = Matmul.kernel.Kernel.program in
  let padded = Transform.Pad.apply p ~array:"a" ~amount:8 in
  let d = Ir.Program.find_decl_exn padded "a" in
  (match d.Ir.Decl.dims with
  | dim0 :: _ ->
    Alcotest.(check int) "n+8 at n=10" 18 (Ir.Aff.eval (fun _ -> 10) dim0)
  | [] -> Alcotest.fail "no dims");
  let untouched = Ir.Program.find_decl_exn padded "b" in
  match untouched.Ir.Decl.dims with
  | dim0 :: _ -> Alcotest.(check int) "b untouched" 10 (Ir.Aff.eval (fun _ -> 10) dim0)
  | [] -> Alcotest.fail "no dims"

let test_pad_skips_vectors () =
  let p = Kernels.Matvec.kernel.Kernel.program in
  let padded = Transform.Pad.apply p ~array:"x" ~amount:8 in
  let d = Ir.Program.find_decl_exn padded "x" in
  Alcotest.(check int) "1-D array unchanged" 10
    (Ir.Aff.eval (fun _ -> 10) (List.hd d.Ir.Decl.dims))

let test_pad_preserves_matmul_values () =
  let p = Matmul.kernel.Kernel.program in
  let padded = Transform.Pad.apply_all p ~amount:4 in
  let n = 11 in
  let want = List.assoc "c" (Kernel.run_original Matmul.kernel n).Ir.Exec.arrays in
  let got =
    List.assoc "c" (Ir.Exec.run ~params:[ ("n", n) ] padded).Ir.Exec.arrays
  in
  (* The padded C has extra elements; compare logical columns. *)
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      let w = want.((j * n) + i) and g = got.((j * (n + 4)) + i) in
      if Float.abs (w -. g) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        Alcotest.failf "c[%d,%d] differs" i j
    done
  done

let test_pad_rejects_negative () =
  match Transform.Pad.apply Matmul.kernel.Kernel.program ~array:"a" ~amount:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative padding accepted"

let test_pad_default_amount () =
  Alcotest.(check int) "L1 line" 4 (Transform.Pad.default_amount Machine.sgi_r10000)

(* --- Classify --- *)

let test_classify_compulsory_only () =
  let c =
    Memsim.Classify.create
      { Machine.name = "t"; size_bytes = 1024; line_bytes = 32; assoc = 2; hit_cycles = 0 }
  in
  for i = 0 to 9 do
    Memsim.Classify.access c (i * 32)
  done;
  let r = Memsim.Classify.report c in
  Alcotest.(check int) "10 accesses" 10 r.Memsim.Classify.accesses;
  Alcotest.(check int) "all compulsory" 10 r.Memsim.Classify.compulsory;
  Alcotest.(check int) "no capacity" 0 r.Memsim.Classify.capacity;
  Alcotest.(check int) "no conflict" 0 r.Memsim.Classify.conflict

let test_classify_conflict () =
  (* Two lines mapping to the same set of a direct-mapped cache,
     alternating: all misses beyond the first two are conflicts. *)
  let c =
    Memsim.Classify.create
      { Machine.name = "t"; size_bytes = 1024; line_bytes = 32; assoc = 1; hit_cycles = 0 }
  in
  let sets = 1024 / 32 in
  for _ = 1 to 10 do
    Memsim.Classify.access c 0;
    Memsim.Classify.access c (sets * 32)
  done;
  let r = Memsim.Classify.report c in
  Alcotest.(check int) "2 compulsory" 2 r.Memsim.Classify.compulsory;
  Alcotest.(check int) "0 capacity" 0 r.Memsim.Classify.capacity;
  Alcotest.(check int) "18 conflicts" 18 r.Memsim.Classify.conflict

let test_classify_capacity () =
  (* Cycling over twice the cache's lines: misses are capacity, not
     conflict (fully associative would miss too). *)
  let c =
    Memsim.Classify.create
      { Machine.name = "t"; size_bytes = 256; line_bytes = 32; assoc = 8; hit_cycles = 0 }
  in
  (* capacity = 8 lines; cycle over 16 *)
  for _ = 1 to 5 do
    for i = 0 to 15 do
      Memsim.Classify.access c (i * 32)
    done
  done;
  let r = Memsim.Classify.report c in
  Alcotest.(check int) "16 compulsory" 16 r.Memsim.Classify.compulsory;
  Alcotest.(check bool) "capacity dominated" true
    (r.Memsim.Classify.capacity > 10 * max 1 r.Memsim.Classify.conflict)

let test_classify_accounting () =
  let r =
    Memsim.Classify.of_program Machine.sgi_r10000 ~level:0
      ~params:[ ("n", 20) ]
      Matmul.kernel.Kernel.program
  in
  Alcotest.(check int) "accesses = 4n^3" (4 * 20 * 20 * 20)
    r.Memsim.Classify.accesses;
  Alcotest.(check bool) "components <= misses" true
    (r.Memsim.Classify.compulsory + r.Memsim.Classify.capacity
    <= r.Memsim.Classify.real_misses + r.Memsim.Classify.capacity)

(* --- Random search --- *)

let variant () =
  List.hd (Core.Derive.variants Machine.sgi_r10000 Matmul.kernel)

let test_random_search_runs () =
  match
    Baselines.Random_search.tune
      (Core.Engine.create Machine.sgi_r10000)
      ~n:32 ~mode:fast ~points:5 ~seed:1 (variant ())
  with
  | Some r ->
    Alcotest.(check int) "5 points" 5 r.Baselines.Random_search.evaluated;
    Alcotest.(check bool) "feasible result" true
      (Core.Variant.feasible (variant ()) ~n:32 r.Baselines.Random_search.bindings)
  | None -> Alcotest.fail "no result"

let test_random_search_deterministic () =
  let run () =
    match
      Baselines.Random_search.tune
        (Core.Engine.create Machine.sgi_r10000)
        ~n:32 ~mode:fast ~points:4 ~seed:7 (variant ())
    with
    | Some r -> r.Baselines.Random_search.bindings
    | None -> []
  in
  Alcotest.(check bool) "same twice" true (run () = run ())

let test_random_seeds_differ () =
  let run seed =
    match
      Baselines.Random_search.tune
        (Core.Engine.create Machine.sgi_r10000)
        ~n:32 ~mode:fast ~points:3 ~seed (variant ())
    with
    | Some r -> r.Baselines.Random_search.bindings
    | None -> []
  in
  Alcotest.(check bool) "different seeds explore differently" true
    (run 1 <> run 2)

(* --- experiments --- *)

let test_strategies_smoke () =
  let entries =
    Experiments.Strategies.run ~mode:fast ~machine:Machine.generic_small ~n:48 ()
  in
  Alcotest.(check int) "five strategies" 5 (List.length entries);
  let guided = List.hd entries in
  Alcotest.(check bool) "guided positive" true
    (guided.Experiments.Strategies.mflops > 0.0)

let test_conflicts_copy_wins_at_pathological_size () =
  let entries = Experiments.Conflicts.run ~sizes:[ 64; 128 ] () in
  Alcotest.(check int) "four entries" 4 (List.length entries);
  let find what n =
    List.find
      (fun e -> e.Experiments.Conflicts.what = what && e.Experiments.Conflicts.n = n)
      entries
  in
  let nocopy = find "no-copy" 128 and copy = find "copy" 128 in
  Alcotest.(check bool) "copy removes most conflicts" true
    (copy.Experiments.Conflicts.report.Memsim.Classify.conflict * 4
    < nocopy.Experiments.Conflicts.report.Memsim.Classify.conflict)

let test_padding_experiment_stabilizes () =
  let r =
    Experiments.Padding.run ~mode:fast ~sizes:[ 100; 128 ] ~tune_n:64
      Machine.sgi_r10000
  in
  match r.Experiments.Padding.series with
  | [ eco; padded ] ->
    (* Padding must help at the pathological 128. *)
    let at s n = List.assoc n s.Experiments.Series.points in
    Alcotest.(check bool)
      (Printf.sprintf "padded >= plain at 128 (%.1f vs %.1f)" (at padded 128)
         (at eco 128))
      true
      (at padded 128 >= at eco 128)
  | _ -> Alcotest.fail "expected two series"

let suite =
  [
    Alcotest.test_case "pad: changes dims" `Quick test_pad_changes_dims;
    Alcotest.test_case "pad: skips vectors" `Quick test_pad_skips_vectors;
    Alcotest.test_case "pad: preserves values" `Quick
      test_pad_preserves_matmul_values;
    Alcotest.test_case "pad: rejects negative" `Quick test_pad_rejects_negative;
    Alcotest.test_case "pad: default amount" `Quick test_pad_default_amount;
    Alcotest.test_case "classify: compulsory" `Quick test_classify_compulsory_only;
    Alcotest.test_case "classify: conflict" `Quick test_classify_conflict;
    Alcotest.test_case "classify: capacity" `Quick test_classify_capacity;
    Alcotest.test_case "classify: accounting" `Quick test_classify_accounting;
    Alcotest.test_case "random search: runs" `Quick test_random_search_runs;
    Alcotest.test_case "random search: deterministic" `Quick
      test_random_search_deterministic;
    Alcotest.test_case "random search: seeds differ" `Quick
      test_random_seeds_differ;
    Alcotest.test_case "strategies: smoke" `Slow test_strategies_smoke;
    Alcotest.test_case "conflicts: copy wins" `Slow
      test_conflicts_copy_wins_at_pathological_size;
    Alcotest.test_case "padding: stabilizes" `Slow test_padding_experiment_stabilizes;
  ]
