(* Tests for the comparator implementations: the Native-compiler model,
   the ATLAS-style tuner, the vendor-BLAS model and model-only. *)

module Kernel = Kernels.Kernel
module Matmul = Kernels.Matmul
module Jacobi3d = Kernels.Jacobi3d

let sgi = Machine.sgi_r10000
let sun = Machine.ultrasparc_iie
let fast = Core.Executor.Budget 30_000

let check_mm_correct msg program =
  let n = 13 in
  let got = Ir.Exec.run ~params:[ ("n", n) ] program in
  let want = Kernel.run_original Matmul.kernel n in
  let gc = List.assoc "c" got.Ir.Exec.arrays in
  let wc = List.assoc "c" want.Ir.Exec.arrays in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. gc.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        Alcotest.failf "%s: c[%d] differs" msg i)
    wc

(* --- Native compiler --- *)

let test_native_profiles () =
  Alcotest.(check bool) "SGI tiles" true
    (Baselines.Native_compiler.default_profile sgi = Baselines.Native_compiler.Tiling);
  Alcotest.(check bool) "Sun basic" true
    (Baselines.Native_compiler.default_profile sun = Baselines.Native_compiler.Basic)

let test_native_output_correct () =
  check_mm_correct "native tiling"
    (Baselines.Native_compiler.compile sgi Matmul.kernel);
  check_mm_correct "native basic"
    (Baselines.Native_compiler.compile ~profile:Baselines.Native_compiler.Basic
       sgi Matmul.kernel)

let test_native_jacobi_correct () =
  let p = Baselines.Native_compiler.compile sgi Jacobi3d.kernel in
  let n = 10 in
  let got = Ir.Exec.run ~params:[ ("n", n) ] p in
  let want = Kernel.run_original Jacobi3d.kernel n in
  let ga = List.assoc "a" got.Ir.Exec.arrays in
  let wa = List.assoc "a" want.Ir.Exec.arrays in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. ga.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        Alcotest.failf "native jacobi: a[%d] differs" i)
    wa

let test_native_tiling_beats_basic_on_sgi () =
  let engine = Core.Engine.create sgi in
  let mflops profile =
    (Baselines.Native_compiler.measure ~profile engine Matmul.kernel ~n:128
       ~mode:fast)
      .Core.Executor.mflops
  in
  Alcotest.(check bool) "tiling helps at cache-exceeding size" true
    (mflops Baselines.Native_compiler.Tiling
    > mflops Baselines.Native_compiler.Basic)

(* --- ATLAS --- *)

let test_atlas_grid_sane () =
  let grid = Baselines.Atlas_search.grid sgi in
  Alcotest.(check bool)
    (Printf.sprintf "grid has many points (%d)" (List.length grid))
    true
    (List.length grid > 100);
  List.iter
    (fun (c : Baselines.Atlas_search.config) ->
      Alcotest.(check bool) "nb bounded" true
        (c.Baselines.Atlas_search.nb >= 16 && c.Baselines.Atlas_search.nb <= 80);
      Alcotest.(check bool) "register kernel fits" true
        ((c.Baselines.Atlas_search.mu * c.Baselines.Atlas_search.nu)
         + c.Baselines.Atlas_search.mu + c.Baselines.Atlas_search.nu + 2
        <= Machine.available_registers sgi))
    grid

let test_atlas_program_correct () =
  check_mm_correct "atlas nocopy"
    (Baselines.Atlas_search.program Matmul.kernel
       { Baselines.Atlas_search.nb = 5; mu = 2; nu = 3; copy = false });
  check_mm_correct "atlas copy"
    (Baselines.Atlas_search.program Matmul.kernel
       { Baselines.Atlas_search.nb = 5; mu = 2; nu = 3; copy = true })

let test_atlas_copy_threshold () =
  let c = { Baselines.Atlas_search.nb = 32; mu = 4; nu = 4; copy = false } in
  let engine = Core.Engine.create sgi in
  (* measure_at decides the copy by size: small n -> no copy. *)
  let small = Baselines.Atlas_search.measure_at engine c ~n:48 ~mode:fast in
  let large = Baselines.Atlas_search.measure_at engine c ~n:128 ~mode:fast in
  Alcotest.(check bool) "both run" true
    (small.Core.Executor.mflops > 0.0 && large.Core.Executor.mflops > 0.0)

(* --- Vendor BLAS --- *)

let test_vendor_correct () =
  check_mm_correct "vendor sgi" (Baselines.Vendor_blas.program sgi);
  check_mm_correct "vendor sun" (Baselines.Vendor_blas.program sun)

let test_vendor_fixed_parameters () =
  Alcotest.(check bool) "sgi and sun differ" true
    (Baselines.Vendor_blas.bindings sgi <> Baselines.Vendor_blas.bindings sun)

(* --- Model only --- *)

let test_model_only_runs () =
  match
    Baselines.Model_only.optimize
      (Core.Engine.create sgi)
      Matmul.kernel ~n:64 ~mode:fast
  with
  | Some r ->
    Alcotest.(check bool) "positive" true
      (r.Baselines.Model_only.measurement.Core.Executor.mflops > 0.0);
    Alcotest.(check bool) "bindings feasible" true
      (Core.Variant.feasible r.Baselines.Model_only.variant ~n:64
         r.Baselines.Model_only.bindings)
  | None -> Alcotest.fail "no model-only result"

let suite =
  [
    Alcotest.test_case "native: machine profiles" `Quick test_native_profiles;
    Alcotest.test_case "native: output correct" `Quick test_native_output_correct;
    Alcotest.test_case "native: jacobi correct" `Quick test_native_jacobi_correct;
    Alcotest.test_case "native: tiling beats basic" `Quick
      test_native_tiling_beats_basic_on_sgi;
    Alcotest.test_case "atlas: grid sane" `Quick test_atlas_grid_sane;
    Alcotest.test_case "atlas: programs correct" `Quick test_atlas_program_correct;
    Alcotest.test_case "atlas: copy threshold" `Quick test_atlas_copy_threshold;
    Alcotest.test_case "vendor: correct" `Quick test_vendor_correct;
    Alcotest.test_case "vendor: per-machine parameters" `Quick
      test_vendor_fixed_parameters;
    Alcotest.test_case "model-only: runs" `Quick test_model_only_runs;
  ]
