(* C code-generation tests.

   Structure checks always run; when a C compiler is available (it is in
   CI and the dev container), generated kernels are additionally
   compiled with gcc and executed against the IR executor's results —
   the strongest possible cross-validation of both the code generator
   and the executor. *)

open Ir
module Kernel = Kernels.Kernel
module Matmul = Kernels.Matmul
module Jacobi3d = Kernels.Jacobi3d

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mm = Matmul.kernel.Kernel.program

(* --- structural checks --- *)

let test_prototype () =
  Alcotest.(check string) "prototype"
    "void matmul(ptrdiff_t n, double *restrict a, double *restrict b, double *restrict c)"
    (Codegen_c.prototype mm)

let test_contains_loops () =
  let code = Codegen_c.function_code mm in
  Alcotest.(check bool) "k loop" true (contains "for (ptrdiff_t k = 0;" code);
  Alcotest.(check bool) "column-major index" true (contains "(i) + (n)*((k))" code)

let test_tiled_code_uses_min () =
  let p =
    Transform.Tile.apply mm
      [ { Transform.Tile.var = "j"; size = 7; control = "jj" } ]
      ~control_order:[ "jj" ]
  in
  let code = Codegen_c.function_code p in
  Alcotest.(check bool) "ECO_MIN used" true (contains "ECO_MIN" code)

let test_unrolled_code_uses_floormult () =
  let p = Transform.Unroll_jam.apply mm "i" 4 in
  let code = Codegen_c.function_code p in
  Alcotest.(check bool) "ECO_FLOORMULT used" true (contains "ECO_FLOORMULT" code)

let test_temp_becomes_local () =
  let p =
    Transform.Tile.apply mm
      [
        { Transform.Tile.var = "j"; size = 6; control = "jj" };
        { Transform.Tile.var = "k"; size = 5; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in
  let p =
    Transform.Copy_opt.apply p ~array:"b" ~temp:"p_b" ~at:"jj"
      ~dims:
        [
          { Transform.Copy_opt.base = Aff.var "kk"; extent = 5; bound = Aff.var "n" };
          { Transform.Copy_opt.base = Aff.var "jj"; extent = 6; bound = Aff.var "n" };
        ]
  in
  let code = Codegen_c.function_code p in
  Alcotest.(check bool) "static local temp" true
    (contains "static double p_b[30];" code);
  Alcotest.(check bool) "temp not a parameter" false
    (contains "restrict p_b" (Codegen_c.prototype p))

let test_registers_become_locals () =
  let p = Transform.Permute.apply mm [ "i"; "j"; "k" ] in
  let p = Transform.Scalar_replace.apply p in
  let code = Codegen_c.function_code p in
  Alcotest.(check bool) "double local" true (contains "double c_r0;" code)

let test_prefetch_becomes_builtin () =
  let p = Transform.Prefetch_insert.apply mm ~array:"a" ~distance:2 ~line_elems:4 in
  let code = Codegen_c.function_code p in
  Alcotest.(check bool) "__builtin_prefetch" true
    (contains "__builtin_prefetch(&a[" code)

let test_preamble_in_file () =
  let code = Codegen_c.file mm in
  Alcotest.(check bool) "include stddef" true (contains "#include <stddef.h>" code);
  Alcotest.(check bool) "helpers" true (contains "ECO_FLOORDIV" code)

(* --- Fortran 90 --- *)

let test_f90_subroutine () =
  let code = Codegen_f90.subroutine_code mm in
  Alcotest.(check bool) "subroutine header" true
    (contains "subroutine matmul(n, a, b, c)" code);
  Alcotest.(check bool) "0-based arrays" true
    (contains "real(8), intent(inout) :: a(0:n - 1, 0:n - 1)" code);
  Alcotest.(check bool) "do loop" true (contains "do k = 0, n - 1" code);
  Alcotest.(check bool) "multi-dim subscript" true (contains "a(i, k)" code)

let test_f90_tiled_min () =
  let p =
    Transform.Tile.apply mm
      [ { Transform.Tile.var = "j"; size = 7; control = "jj" } ]
      ~control_order:[ "jj" ]
  in
  let code = Codegen_f90.subroutine_code p in
  Alcotest.(check bool) "min intrinsic" true (contains "min(jj + 6, n - 1)" code);
  Alcotest.(check bool) "strided do" true (contains "do jj = 0, n - 1, 7" code)

let test_f90_unroll_helper () =
  let p = Transform.Unroll_jam.apply mm "i" 4 in
  let code = Codegen_f90.file p in
  Alcotest.(check bool) "floormult helper used" true
    (contains "eco_floormult(" code);
  Alcotest.(check bool) "helper defined" true
    (contains "pure integer function eco_floormult" code)

let test_f90_registers_and_temps () =
  let p = Transform.Permute.apply mm [ "i"; "j"; "k" ] in
  let p =
    Transform.Tile.apply p
      [
        { Transform.Tile.var = "j"; size = 6; control = "jj" };
        { Transform.Tile.var = "k"; size = 5; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in
  let p =
    Transform.Copy_opt.apply p ~array:"b" ~temp:"p_b" ~at:"jj"
      ~dims:
        [
          { Transform.Copy_opt.base = Aff.var "kk"; extent = 5; bound = Aff.var "n" };
          { Transform.Copy_opt.base = Aff.var "jj"; extent = 6; bound = Aff.var "n" };
        ]
  in
  let p = Transform.Scalar_replace.apply p in
  let code = Codegen_f90.subroutine_code p in
  Alcotest.(check bool) "saved temp" true
    (contains "real(8), save :: p_b(0:4, 0:5)" code);
  Alcotest.(check bool) "register local" true (contains "real(8) :: c_r0" code)

let test_f90_prefetch_comment () =
  let p = Transform.Prefetch_insert.apply mm ~array:"a" ~distance:2 ~line_elems:4 in
  let code = Codegen_f90.subroutine_code p in
  Alcotest.(check bool) "prefetch comment" true (contains "! prefetch a(" code)

(* --- compile-and-run cross-validation --- *)

let gcc_available =
  lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

let emit_doubles buf arr =
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      if i mod 8 = 7 then Buffer.add_string buf "\n  ";
      Buffer.add_string buf (Printf.sprintf "%.17g" v))
    arr

(* Build a driver that initializes parameter arrays exactly as the
   executor does, calls the kernel, and verifies the outputs the
   executor produced. *)
let compile_and_check ~test_name (kernel : Kernel.t) program n =
  let result =
    Exec.run ~params:[ (kernel.Kernel.size_param, n) ] program
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (Codegen_c.file program);
  Buffer.add_string buf "\n#include <stdio.h>\n#include <math.h>\n";
  (* Inputs: the executor's deterministic initial values. *)
  let param_arrays =
    List.filter
      (fun (d : Decl.t) ->
        d.Decl.storage = Decl.Heap
        && List.exists (fun a -> Aff.vars a <> []) d.Decl.dims)
      program.Program.decls
  in
  List.iter
    (fun (d : Decl.t) ->
      let elements =
        List.fold_left
          (fun acc a -> acc * Aff.eval (fun _ -> n) a)
          1 d.Decl.dims
      in
      let dims = List.map (Aff.eval (fun _ -> n)) d.Decl.dims in
      let rec coords_of flat = function
        | [] -> []
        | [ _ ] -> [ flat ]
        | dim :: rest -> (flat mod dim) :: coords_of (flat / dim) rest
      in
      let init =
        Array.init elements (fun e ->
            Exec.initial_value_at d.Decl.name (coords_of e dims))
      in
      Buffer.add_string buf
        (Printf.sprintf "static double %s_data[%d] = {\n  " d.Decl.name elements);
      emit_doubles buf init;
      Buffer.add_string buf "\n};\n")
    param_arrays;
  (* Expected outputs from the executor. *)
  List.iter
    (fun (d : Decl.t) ->
      let expected = List.assoc d.Decl.name result.Exec.arrays in
      Buffer.add_string buf
        (Printf.sprintf "static double %s_expected[%d] = {\n  " d.Decl.name
           (Array.length expected));
      emit_doubles buf expected;
      Buffer.add_string buf "\n};\n")
    param_arrays;
  let call_args =
    String.concat ", "
      (List.map (fun _ -> string_of_int n) program.Program.params
      @ List.map (fun (d : Decl.t) -> d.Decl.name ^ "_data") param_arrays)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "int main(void) {\n\
       \  %s(%s);\n\
       \  int bad = 0;\n"
       program.Program.name call_args);
  List.iter
    (fun (d : Decl.t) ->
      let expected = List.assoc d.Decl.name result.Exec.arrays in
      Buffer.add_string buf
        (Printf.sprintf
           "  for (int i = 0; i < %d; i++) {\n\
            \    double w = %s_expected[i], g = %s_data[i];\n\
            \    double s = fabs(w) > 1.0 ? fabs(w) : 1.0;\n\
            \    if (fabs(w - g) > 1e-9 * s) bad++;\n\
            \  }\n"
           (Array.length expected) d.Decl.name d.Decl.name))
    param_arrays;
  Buffer.add_string buf "  printf(\"%d mismatches\\n\", bad);\n  return bad == 0 ? 0 : 1;\n}\n";
  let dir = Filename.temp_file ("eco_" ^ test_name) "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let c_file = Filename.concat dir "kernel.c" in
  let exe = Filename.concat dir "kernel" in
  let oc = open_out c_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  let compile =
    Sys.command (Printf.sprintf "gcc -O1 -o %s %s -lm 2> %s/gcc.log" exe c_file dir)
  in
  if compile <> 0 then Alcotest.failf "%s: gcc failed (see %s)" test_name dir;
  let run = Sys.command (Printf.sprintf "%s > /dev/null" exe) in
  Alcotest.(check int) (test_name ^ ": C output matches executor") 0 run

let with_gcc f () =
  if Lazy.force gcc_available then f ()
  else Alcotest.skip ()

let test_c_naive_matmul () =
  compile_and_check ~test_name:"naive_mm" Matmul.kernel mm 13

let test_c_figure_1b () =
  let p = Transform.Permute.apply mm [ "i"; "j"; "k" ] in
  let p =
    Transform.Tile.apply p
      [
        { Transform.Tile.var = "j"; size = 6; control = "jj" };
        { Transform.Tile.var = "k"; size = 7; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in
  let p =
    Transform.Copy_opt.apply p ~array:"b" ~temp:"p_b" ~at:"jj"
      ~dims:
        [
          { Transform.Copy_opt.base = Aff.var "kk"; extent = 7; bound = Aff.var "n" };
          { Transform.Copy_opt.base = Aff.var "jj"; extent = 6; bound = Aff.var "n" };
        ]
  in
  let p = Transform.Unroll_jam.apply p "i" 4 in
  let p = Transform.Unroll_jam.apply p "j" 2 in
  let p = Transform.Scalar_replace.apply p in
  let p = Transform.Prefetch_insert.apply p ~array:"a" ~distance:2 ~line_elems:4 in
  compile_and_check ~test_name:"figure_1b" Matmul.kernel p 13

let test_c_tuned_variant () =
  (* The real thing: generate C for an ECO-tuned variant. *)
  let r =
    Core.Eco.optimize ~mode:(Core.Executor.Budget 20_000) Machine.sgi_r10000
      Matmul.kernel ~n:24
  in
  compile_and_check ~test_name:"tuned_mm" Matmul.kernel
    r.Core.Eco.outcome.Core.Search.program 17

let test_c_jacobi_rotation () =
  let p = Jacobi3d.kernel.Kernel.program in
  let p = Transform.Unroll_jam.apply p "j" 2 in
  let p = Transform.Scalar_replace.apply p in
  compile_and_check ~test_name:"jacobi_rot" Jacobi3d.kernel p 9

(* --- golden output ---

   Exact emitted text for one tiled+unrolled+copied matmul variant.
   These pin the concrete shape of the generated code — loop headers,
   clipping via ECO_MIN/min, the FLOORMULT epilogue split, copy-buffer
   indexing — so an unintended emitter change shows up as a readable
   diff, not a silent formatting drift.  Regenerate by printing
   [function_code]/[subroutine_code] of this pipeline and reviewing the
   diff. *)

let golden_program =
  Check.Pipe.apply Matmul.kernel
    (Check.Pipe.of_string "tile:j=4,k=4;copy:b;unroll:i=2")

let golden_c =
  {golden|void matmul(ptrdiff_t n, double *restrict a, double *restrict b, double *restrict c) {
  static double p_b[16];
  for (ptrdiff_t jj = 0; jj <= n - 1; jj += 4) {
    for (ptrdiff_t kk = 0; kk <= n - 1; kk += 4) {
      for (ptrdiff_t p_b_c1 = 0; p_b_c1 <= ECO_MIN(3, -jj + n - 1); p_b_c1 += 1) {
        for (ptrdiff_t p_b_c0 = 0; p_b_c0 <= ECO_MIN(3, -kk + n - 1); p_b_c0 += 1) {
          p_b[(p_b_c0) + (4)*((p_b_c1))] = b[(kk + p_b_c0) + (n)*((jj + p_b_c1))];
        }
      }
      for (ptrdiff_t k = kk; k <= ECO_MIN(kk + 3, n - 1); k += 1) {
        for (ptrdiff_t j = jj; j <= ECO_MIN(jj + 3, n - 1); j += 1) {
          for (ptrdiff_t i = 0; i <= ((ECO_MAX(ECO_FLOORMULT(n, 2), 0) + 0) + -1); i += 2) {
            c[(i) + (n)*((j))] = (c[(i) + (n)*((j))] + (a[(i) + (n)*((k))] * p_b[(k - kk) + (4)*((j - jj))]));
            c[(i + 1) + (n)*((j))] = (c[(i + 1) + (n)*((j))] + (a[(i + 1) + (n)*((k))] * p_b[(k - kk) + (4)*((j - jj))]));
          }
          for (ptrdiff_t i = (ECO_MAX(ECO_FLOORMULT(n, 2), 0) + 0); i <= n - 1; i += 1) {
            c[(i) + (n)*((j))] = (c[(i) + (n)*((j))] + (a[(i) + (n)*((k))] * p_b[(k - kk) + (4)*((j - jj))]));
          }
        }
      }
    }
  }
}
|golden}

let golden_f90 =
  {golden|subroutine matmul(n, a, b, c)
  use eco_helpers
  implicit none
  integer, intent(in) :: n
  real(8), intent(inout) :: a(0:n - 1, 0:n - 1)
  real(8), intent(inout) :: b(0:n - 1, 0:n - 1)
  real(8), intent(inout) :: c(0:n - 1, 0:n - 1)
  integer :: jj, kk, p_b_c1, p_b_c0, k, j, i
  real(8), save :: p_b(0:3, 0:3)
  do jj = 0, n - 1, 4
    do kk = 0, n - 1, 4
      do p_b_c1 = 0, min(3, -jj + n - 1)
        do p_b_c0 = 0, min(3, -kk + n - 1)
          p_b(p_b_c0, p_b_c1) = b(kk + p_b_c0, jj + p_b_c1)
        end do
      end do
      do k = kk, min(kk + 3, n - 1)
        do j = jj, min(jj + 3, n - 1)
          do i = 0, ((max(eco_floormult(n, 2), 0) + 0) + -1), 2
            c(i, j) = (c(i, j) + (a(i, k) * p_b(k - kk, j - jj)))
            c(i + 1, j) = (c(i + 1, j) + (a(i + 1, k) * p_b(k - kk, j - jj)))
          end do
          do i = (max(eco_floormult(n, 2), 0) + 0), n - 1
            c(i, j) = (c(i, j) + (a(i, k) * p_b(k - kk, j - jj)))
          end do
        end do
      end do
    end do
  end do
end subroutine matmul
|golden}

let test_golden_c () =
  Alcotest.(check string) "C function text" golden_c
    (Codegen_c.function_code golden_program)

let test_golden_f90 () =
  Alcotest.(check string) "F90 subroutine text" golden_f90
    (Codegen_f90.subroutine_code golden_program)

let suite =
  [
    Alcotest.test_case "prototype" `Quick test_prototype;
    Alcotest.test_case "loop structure" `Quick test_contains_loops;
    Alcotest.test_case "tiled code uses ECO_MIN" `Quick test_tiled_code_uses_min;
    Alcotest.test_case "unrolled code uses ECO_FLOORMULT" `Quick
      test_unrolled_code_uses_floormult;
    Alcotest.test_case "copy temp becomes static local" `Quick
      test_temp_becomes_local;
    Alcotest.test_case "registers become locals" `Quick
      test_registers_become_locals;
    Alcotest.test_case "prefetch becomes builtin" `Quick
      test_prefetch_becomes_builtin;
    Alcotest.test_case "preamble" `Quick test_preamble_in_file;
    Alcotest.test_case "f90: subroutine" `Quick test_f90_subroutine;
    Alcotest.test_case "f90: tiled min" `Quick test_f90_tiled_min;
    Alcotest.test_case "f90: unroll helper" `Quick test_f90_unroll_helper;
    Alcotest.test_case "f90: registers and temps" `Quick
      test_f90_registers_and_temps;
    Alcotest.test_case "f90: prefetch comment" `Quick test_f90_prefetch_comment;
    Alcotest.test_case "golden: C tiled+unrolled+copied matmul" `Quick
      test_golden_c;
    Alcotest.test_case "golden: F90 tiled+unrolled+copied matmul" `Quick
      test_golden_f90;
    Alcotest.test_case "gcc: naive matmul" `Slow (with_gcc test_c_naive_matmul);
    Alcotest.test_case "gcc: figure 1(b) pipeline" `Slow (with_gcc test_c_figure_1b);
    Alcotest.test_case "gcc: ECO-tuned variant" `Slow (with_gcc test_c_tuned_variant);
    Alcotest.test_case "gcc: jacobi rotation" `Slow (with_gcc test_c_jacobi_rotation);
  ]
