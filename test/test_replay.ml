(* Tests for the three replay tiers of the evaluator: batched
   multi-plan replay (Hierarchy.Batch / Demand_trace.measure_plans),
   sampled simulation (Memsim.Sampling + suffix-only measurement), and
   incremental prefetch re-pricing (Demand_trace.reprice_group) — plus
   the engine-level demand-trace LRU and the exactness guarantees of
   sampled searches. *)

module Matmul = Kernels.Matmul

let sgi = Machine.sgi_r10000
let fast = Core.Executor.Budget 30_000

let variant () = List.hd (Core.Derive.variants sgi Matmul.kernel)

let some_point engine v ~n =
  match Core.Search.model_point (Core.Engine.machine engine) ~n v with
  | Some bindings -> bindings
  | None -> Alcotest.fail "no model point for test variant"

(* --- synthetic packed event streams ----------------------------------- *)

(* A deterministic pseudo-random packed stream mixing loads, stores and
   prefetches over a working set a bit larger than the L1. *)
let synthetic_events n =
  let state = ref 123456789 in
  let next () =
    state := (!state * 1103515245) + 12345;
    (!state lsr 11) land 0xFFFFFF
  in
  Array.init n (fun _ ->
      let addr = next () mod 100_000 in
      let tag =
        match next () mod 10 with
        | 0 -> Ir.Sink.tag_prefetch
        | 1 | 2 -> Ir.Sink.tag_store
        | _ -> Ir.Sink.tag_load
      in
      (addr lsl 2) lor tag)

let check_counters msg a b =
  Alcotest.(check bool) msg true (a = b)

let test_replay_many_matches_packed () =
  let events = synthetic_events 20_000 in
  let k = 3 in
  let batched = Array.init k (fun _ -> Memsim.Hierarchy.create sgi) in
  let b = Memsim.Hierarchy.Batch.create batched in
  Memsim.Hierarchy.Batch.replay_all b events ~pos:0 ~len:(Array.length events);
  Memsim.Hierarchy.Batch.sync b;
  for i = 0 to k - 1 do
    let solo = Memsim.Hierarchy.create sgi in
    Memsim.Hierarchy.replay_packed solo events ~pos:0 ~len:(Array.length events);
    check_counters
      (Printf.sprintf "state %d counters identical" i)
      (Memsim.Hierarchy.counters batched.(i))
      (Memsim.Hierarchy.counters solo)
  done

(* The SoA one-event / range feeds compose with the shared-run feed:
   interleaving them per plan is still bit-identical to a solo replay
   of the concatenated stream. *)
let test_batch_mixed_feed_matches_packed () =
  let events = synthetic_events 12_000 in
  let n = Array.length events in
  let cutA = 5_000 and cutB = 9_000 in
  let k = 4 in
  let batched = Array.init k (fun _ -> Memsim.Hierarchy.create sgi) in
  let b = Memsim.Hierarchy.Batch.create batched in
  Memsim.Hierarchy.Batch.replay_all b events ~pos:0 ~len:cutA;
  for i = 0 to k - 1 do
    for e = cutA to cutB - 1 do
      Memsim.Hierarchy.Batch.replay_one b i events.(e)
    done
  done;
  for i = 0 to k - 1 do
    Memsim.Hierarchy.Batch.replay_range b i events ~pos:cutB ~len:(n - cutB)
  done;
  Memsim.Hierarchy.Batch.sync b;
  for i = 0 to k - 1 do
    let solo = Memsim.Hierarchy.create sgi in
    Memsim.Hierarchy.replay_packed solo events ~pos:0 ~len:n;
    check_counters
      (Printf.sprintf "mixed feed state %d counters identical" i)
      (Memsim.Hierarchy.counters batched.(i))
      (Memsim.Hierarchy.counters solo)
  done

let test_replay_event_matches_packed () =
  let events = synthetic_events 5_000 in
  let a = Memsim.Hierarchy.create sgi in
  let b = Memsim.Hierarchy.create sgi in
  Memsim.Hierarchy.replay_packed a events ~pos:0 ~len:(Array.length events);
  Array.iter (Memsim.Hierarchy.replay_event b) events;
  check_counters "event-at-a-time counters identical"
    (Memsim.Hierarchy.counters a) (Memsim.Hierarchy.counters b)

let test_warm_variants_agree () =
  (* Warm with each of the three entry points, then replay the same
     tail: all counters must agree (warm-up leaves identical state). *)
  let events = synthetic_events 8_000 in
  let cut = 3_000 in
  let tail h =
    Memsim.Hierarchy.reset_counters h;
    Memsim.Hierarchy.replay_packed h events ~pos:cut
      ~len:(Array.length events - cut);
    Memsim.Hierarchy.counters h
  in
  let a = Memsim.Hierarchy.create sgi in
  Memsim.Hierarchy.warm_packed a events ~pos:0 ~len:cut;
  let b = Memsim.Hierarchy.create sgi in
  for i = 0 to cut - 1 do
    Memsim.Hierarchy.warm_event b events.(i)
  done;
  let c = Memsim.Hierarchy.create sgi in
  let bc = Memsim.Hierarchy.Batch.create [| c |] in
  Memsim.Hierarchy.Batch.warm_all bc events ~pos:0 ~len:cut;
  let ca = tail a in
  check_counters "warm_event ≡ warm_packed" ca (tail b);
  check_counters "Batch.warm_all ≡ warm_packed" ca (tail c)

(* --- the sampling state machine --------------------------------------- *)

let test_sampler_schedule () =
  let spec = { Memsim.Sampling.shrink = 1; window = 4; gap = 6; warm = 2 } in
  let s = Memsim.Sampling.sampler spec in
  (* Period: 4 measured, 4 dropped, 2 warm, repeat. *)
  let expect = [
    (Memsim.Sampling.Measure, 4);
    (Memsim.Sampling.Drop, 4);
    (Memsim.Sampling.Warm, 2);
    (Memsim.Sampling.Measure, 4);
    (Memsim.Sampling.Drop, 4);
  ] in
  List.iteri
    (fun i (action, len) ->
      let a, k = Memsim.Sampling.take s 100 in
      Alcotest.(check bool) (Printf.sprintf "phase %d action" i) true (a = action);
      Alcotest.(check int) (Printf.sprintf "phase %d length" i) len k)
    expect;
  Alcotest.(check int) "fed" 18 (Memsim.Sampling.fed s);
  Alcotest.(check int) "measured" 8 (Memsim.Sampling.measured s);
  Alcotest.(check (float 1e-9)) "factor" (18.0 /. 8.0) (Memsim.Sampling.factor s)

let test_sampler_chunking_invariant () =
  (* The classification of event [i] must not depend on chunk sizes. *)
  let spec = { Memsim.Sampling.shrink = 1; window = 7; gap = 11; warm = 3 } in
  let classify_in_chunks sizes =
    let s = Memsim.Sampling.sampler spec in
    let out = ref [] in
    List.iter
      (fun n ->
        let remaining = ref n in
        while !remaining > 0 do
          let a, k = Memsim.Sampling.take s !remaining in
          for _ = 1 to k do out := a :: !out done;
          remaining := !remaining - k
        done)
      sizes;
    List.rev !out
  in
  let ones = List.init 100 (fun _ -> 1) in
  Alcotest.(check bool) "per-event ≡ bulk" true
    (classify_in_chunks ones = classify_in_chunks [ 37; 1; 41; 21 ])

let test_sampler_gap_zero_full_replay () =
  let spec = { Memsim.Sampling.shrink = 2; window = 16; gap = 0; warm = 0 } in
  let s = Memsim.Sampling.sampler spec in
  for _ = 1 to 50 do
    let a, _ = Memsim.Sampling.take s 13 in
    Alcotest.(check bool) "always measured" true (a = Memsim.Sampling.Measure)
  done;
  Alcotest.(check (float 1e-9)) "factor 1.0" 1.0 (Memsim.Sampling.factor s)

let test_counters_extrapolate () =
  let c = Memsim.Counters.create () in
  c.Memsim.Counters.loads <- 100;
  c.Memsim.Counters.stores <- 40;
  c.Memsim.Counters.stall_cycles <- 17;
  c.Memsim.Counters.hits.(0) <- 90;
  c.Memsim.Counters.misses.(1) <- 3;
  Memsim.Counters.extrapolate c 2.5;
  Alcotest.(check int) "loads" 250 c.Memsim.Counters.loads;
  Alcotest.(check int) "stores" 100 c.Memsim.Counters.stores;
  Alcotest.(check int) "stalls rounded" 43 c.Memsim.Counters.stall_cycles;
  Alcotest.(check int) "l1 hits" 225 c.Memsim.Counters.hits.(0);
  Alcotest.(check int) "l2 misses" 8 c.Memsim.Counters.misses.(1)

(* --- sampled measurement accuracy (qcheck) ---------------------------- *)

(* Honest error envelope of the sampled estimator on random feasible
   variant points at the search's operating point (matmul n=128, budget
   200k, default spec).  The dominant error source is [shrink]: the
   steady state of a 1/8-length trace genuinely differs from the full
   budget's, so absolute cycle estimates carry large worst-case error
   (measured under the CI seed: median ~0.33, max ~1.00 relative).
   That is acceptable because estimates only STEER — the leaderboard is
   re-measured exactly and the winner polished at exact precision
   ([test_sampled_search_winner_is_exact]) — but the bound below keeps
   the envelope from silently regressing.  Tighten it if the estimator
   improves. *)
let sampled_epsilon = 1.25

(* What steering actually requires: points whose exact costs are well
   separated should usually keep their order under the estimator.
   Universal preservation is false (one inversion at 64% separation
   exists under the CI seed), so the property below bounds the
   INVERSION RATE instead; the exact confirm/polish stage absorbs the
   residual misrankings. *)
let rank_separation = 0.40
let rank_inversion_tolerance = 0.15

let random_feasible_bindings v ~n rand =
  let params =
    List.map snd v.Core.Variant.unrolls @ List.map snd v.Core.Variant.tiles
  in
  let bindings =
    List.map
      (fun p ->
        let vmax = if String.length p > 0 && p.[0] = 'u' then 6 else 64 in
        (p, 1 + QCheck.Gen.int_bound (vmax - 1) rand))
      params
  in
  if Core.Variant.feasible v ~n bindings then Some bindings else None

let epsilon_n = 128
let epsilon_mode = Core.Executor.Budget 200_000

let measure_pair v bindings =
  let program = Core.Variant.instantiate v ~bindings in
  let exact =
    Core.Executor.measure sgi Matmul.kernel ~n:epsilon_n ~mode:epsilon_mode
      program
  in
  let est =
    Core.Executor.measure ~sampling:Memsim.Sampling.default sgi Matmul.kernel
      ~n:epsilon_n ~mode:epsilon_mode program
  in
  (Core.Executor.cycles exact, Core.Executor.cycles est)

(* Seeded: the property must hold, but CI must also be reproducible. *)
let qcheck_rand () = Random.State.make [| 0x5eed |]

let test_sampled_within_epsilon () =
  let v = variant () in
  let gen = QCheck.make (fun rand -> random_feasible_bindings v ~n:epsilon_n rand) in
  let prop = function
    | None -> QCheck.assume_fail ()
    | Some bindings ->
      let ce, cs = measure_pair v bindings in
      abs_float (cs -. ce) /. ce <= sampled_epsilon
  in
  QCheck.Test.check_exn ~rand:(qcheck_rand ())
    (QCheck.Test.make ~count:25 ~name:"sampled cycle estimate within ε" gen prop)

let test_sampled_preserves_ranking () =
  let v = variant () in
  let rand = qcheck_rand () in
  let separated = ref 0 in
  let inverted = ref 0 in
  for _ = 1 to 24 do
    match
      ( random_feasible_bindings v ~n:epsilon_n rand,
        random_feasible_bindings v ~n:epsilon_n rand )
    with
    | Some a, Some b ->
      let cea, csa = measure_pair v a in
      let ceb, csb = measure_pair v b in
      (* Only pairs the search could actually confuse matter: ignore
         near-ties, count inversions among separated pairs. *)
      if abs_float (cea -. ceb) /. Float.min cea ceb >= rank_separation then begin
        incr separated;
        if (cea < ceb) <> (csa < csb) then incr inverted
      end
    | _ -> ()
  done;
  Alcotest.(check bool) "enough separated pairs sampled" true (!separated >= 8);
  Alcotest.(check bool)
    (Printf.sprintf "inversion rate %d/%d within tolerance" !inverted
       !separated)
    true
    (float_of_int !inverted
    <= rank_inversion_tolerance *. float_of_int !separated)

let test_sampled_deterministic () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let program = Core.Variant.instantiate v ~bindings in
  let m1 =
    Core.Executor.measure ~sampling:Memsim.Sampling.default sgi Matmul.kernel
      ~n:48 ~mode:fast program
  in
  let m2 =
    Core.Executor.measure ~sampling:Memsim.Sampling.default sgi Matmul.kernel
      ~n:48 ~mode:fast program
  in
  Alcotest.(check bool) "identical cycles" true
    (Core.Executor.cycles m1 = Core.Executor.cycles m2)

(* --- batched multi-plan replay vs per-plan synthesis ------------------ *)

let capture_for bindings v ~n =
  let program = Core.Variant.instantiate v ~bindings in
  Core.Demand_trace.capture sgi Matmul.kernel ~n ~mode:fast program

let unbatched_measure ?sampling dt plan =
  let buf = Ir.Vm.Buf.create ~capacity:(1 lsl 16) () in
  let cut = Core.Demand_trace.synthesize dt ~plan ~into:buf in
  Core.Executor.measure_from_trace ?sampling sgi Matmul.kernel ~n:48
    ~stats:(Core.Demand_trace.stats dt)
    ~events:(Ir.Vm.Buf.data buf)
    ~n_events:(Ir.Vm.Buf.length buf) ~cut

let sweep_plans = [| [ ("a", 2) ]; [ ("a", 4) ]; [ ("a", 8) ]; [ ("a", 16) ] |]

let test_batched_matches_unbatched_exact () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let dt = capture_for bindings v ~n:48 in
  let batched =
    Core.Demand_trace.measure_plans sgi Matmul.kernel ~n:48 dt
      ~plans:sweep_plans
  in
  Array.iteri
    (fun i plan ->
      let solo = unbatched_measure dt plan in
      Alcotest.(check bool)
        (Printf.sprintf "plan %d cycles bit-identical" i)
        true
        (Core.Executor.cycles batched.(i) = Core.Executor.cycles solo))
    sweep_plans

let test_batched_matches_unbatched_sampled () =
  let sampling = Memsim.Sampling.default in
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let program = Core.Variant.instantiate v ~bindings in
  (* The trace must be captured at the sampled (shrunken) budget, as the
     engine does. *)
  let dt =
    Core.Demand_trace.capture sgi Matmul.kernel ~n:48
      ~mode:(Core.Executor.effective_mode (Some sampling) fast)
      program
  in
  let batched =
    Core.Demand_trace.measure_plans ~sampling sgi Matmul.kernel ~n:48 dt
      ~plans:sweep_plans
  in
  Array.iteri
    (fun i plan ->
      let solo = unbatched_measure ~sampling dt plan in
      Alcotest.(check bool)
        (Printf.sprintf "sampled plan %d estimate bit-identical" i)
        true
        (Core.Executor.cycles batched.(i) = Core.Executor.cycles solo))
    sweep_plans

(* --- incremental re-pricing ------------------------------------------- *)

let test_reprice_group_base_and_best_exact () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let dt = capture_for bindings v ~n:48 in
  match
    Core.Demand_trace.reprice_group sgi Matmul.kernel ~n:48 dt
      ~plans:sweep_plans
  with
  | None -> Alcotest.fail "single-array sweep should be repriceable"
  | Some r ->
    let k = Array.length sweep_plans in
    let measured =
      Array.fold_left
        (fun acc m -> if m <> None then acc + 1 else acc)
        0 r.Core.Demand_trace.rp_measurements
    in
    Alcotest.(check int) "estimated = k - measured"
      (k - measured) r.Core.Demand_trace.rp_estimated;
    Alcotest.(check bool) "at most two real measurements" true (measured <= 2);
    (* Every real measurement must be bit-identical to the unbatched
       per-plan path: committed numbers never come from the model. *)
    Array.iteri
      (fun i m ->
        match m with
        | None -> ()
        | Some m ->
          let solo = unbatched_measure dt sweep_plans.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "measured plan %d exact" i)
            true
            (Core.Executor.cycles m = Core.Executor.cycles solo))
      r.Core.Demand_trace.rp_measurements

(* Multi-array distance variation takes the joint slack path: every
   varying array gets its own slack bucket, siblings are priced under
   the jointly shifted slacks, and the group no longer falls back to a
   full multi-plan replay. *)
let test_reprice_joint_multi_array () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let dt = capture_for bindings v ~n:48 in
  let plans =
    [|
      [ ("a", 2); ("b", 2) ];
      [ ("a", 4); ("b", 4) ];
      [ ("a", 8); ("b", 2) ];
      [ ("a", 2); ("b", 8) ];
    |]
  in
  match Core.Demand_trace.reprice_group sgi Matmul.kernel ~n:48 dt ~plans with
  | None -> Alcotest.fail "joint multi-array sweep should be repriceable"
  | Some r ->
    Alcotest.(check bool) "joint path taken" true r.Core.Demand_trace.rp_joint;
    let measured =
      Array.fold_left
        (fun acc m -> if m <> None then acc + 1 else acc)
        0 r.Core.Demand_trace.rp_measurements
    in
    Alcotest.(check int) "estimated = k - measured"
      (Array.length plans - measured)
      r.Core.Demand_trace.rp_estimated;
    Alcotest.(check bool) "at most two real measurements" true (measured <= 2);
    Array.iteri
      (fun i m ->
        match m with
        | None -> ()
        | Some m ->
          let solo = unbatched_measure dt plans.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "measured plan %d exact" i)
            true
            (Core.Executor.cycles m = Core.Executor.cycles solo))
      r.Core.Demand_trace.rp_measurements

(* Fallback survives for genuinely unanalyzable groups: plans that do
   not all bind the same array list cannot share slack buckets. *)
let test_reprice_rejects_differing_array_lists () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let dt = capture_for bindings v ~n:48 in
  let plans = [| [ ("a", 2) ]; [ ("b", 2) ] |] in
  Alcotest.(check bool) "differing array lists fall back" true
    (Core.Demand_trace.reprice_group sgi Matmul.kernel ~n:48 dt ~plans = None)

(* Honest quality bound of the joint slack model on random multi-array
   sweep groups: the plan the repricer chooses (the argmin of its
   estimates, re-measured exactly) must be within the group-degradation
   envelope of the true best plan — the same <=2% budget the jacobi3d
   acceptance gate enforces end-to-end.  The estimates themselves never
   leave the repricer, so the choice they steer is the testable
   surface. *)
let joint_epsilon = 0.02

let test_joint_reprice_within_epsilon () =
  let v = variant () in
  let bindings = some_point (Core.Engine.create sgi) v ~n:48 in
  let dt = capture_for bindings v ~n:48 in
  let gen =
    QCheck.make (fun rand ->
        Array.init 6 (fun _ ->
            [
              ("a", 1 + QCheck.Gen.int_bound 31 rand);
              ("b", 1 + QCheck.Gen.int_bound 31 rand);
            ]))
  in
  let prop plans =
    match Core.Demand_trace.reprice_group sgi Matmul.kernel ~n:48 dt ~plans with
    | None -> QCheck.assume_fail ()
    | Some r ->
      (* Chosen plan: the best (by exact cycles) among the real
         measurements — the search commits only those. *)
      let chosen =
        Array.fold_left
          (fun acc m ->
            match (m, acc) with
            | Some m, Some c
              when Core.Executor.cycles c <= Core.Executor.cycles m ->
              acc
            | Some m, _ -> Some m
            | None, _ -> acc)
          None r.Core.Demand_trace.rp_measurements
      in
      let truth =
        Array.fold_left
          (fun acc plan ->
            let c = Core.Executor.cycles (unbatched_measure dt plan) in
            Float.min acc c)
          infinity plans
      in
      (match chosen with
      | None -> false
      | Some m ->
        Core.Executor.cycles m <= (1.0 +. joint_epsilon) *. truth)
      (* and every real measurement stays bit-exact *)
      && Array.for_all2
           (fun m plan ->
             match m with
             | None -> true
             | Some m ->
               Core.Executor.cycles m
               = Core.Executor.cycles (unbatched_measure dt plan))
           r.Core.Demand_trace.rp_measurements plans
  in
  QCheck.Test.check_exn ~rand:(qcheck_rand ())
    (QCheck.Test.make ~count:20
       ~name:"joint reprice chooses within ε of true best" gen prop)

(* Regression pin: the jacobi3d thrash case.  At n=64 a full plane of
   the 3-D stencil equals the 32 KB L1, so every prefetch on the main
   array is wasted (evicted before its first demand use).  The old
   single-array repricer bailed out ("no slack samples") and fell back
   to a full K-plan replay; wasted first uses are distance-invariant
   evidence, so the group must re-price. *)
let test_jacobi3d_thrash_group_reprices () =
  let kernel = Kernels.Jacobi3d.kernel in
  let n = 64 in
  let v = List.hd (Core.Derive.variants sgi kernel) in
  let bindings =
    match Core.Search.model_point sgi ~n v with
    | Some b -> b
    | None -> Alcotest.fail "no model point for jacobi3d"
  in
  let program = Core.Variant.instantiate v ~bindings in
  let dt = Core.Demand_trace.capture sgi kernel ~n ~mode:fast program in
  let arr =
    (List.hd (Ir.Program.heap_arrays (Core.Demand_trace.program dt)))
      .Ir.Decl.name
  in
  let plans = Array.init 8 (fun i -> [ (arr, 1 + (2 * i)) ]) in
  match Core.Demand_trace.reprice_group sgi kernel ~n dt ~plans with
  | None -> Alcotest.fail "jacobi3d sweep group must re-price, not fall back"
  | Some r ->
    Alcotest.(check bool) "most plans priced without replay" true
      (r.Core.Demand_trace.rp_estimated >= Array.length plans - 2)

(* --- demand-trace LRU under the entry cap ----------------------------- *)

let test_trace_lru_eviction () =
  let engine = Core.Engine.create sgi in
  let v = variant () in
  let base = some_point engine v ~n:48 in
  (* Distinct tile bindings → distinct trace keys.  ti is the outermost
     tile parameter of the matmul variant. *)
  let point i =
    List.map
      (fun (k, x) -> if k = "ti" then (k, max 1 (x - i)) else (k, x))
      base
  in
  (* A batched pair of plans at one bindings point forms a sweep group;
     the group captures (or reuses) that point's demand trace.
     Single-shot evaluations never fill — captures only pay when a
     multi-plan group amortizes them. *)
  let sweep bindings d1 d2 =
    match
      Core.Engine.evaluate_batch engine
        [
          Core.Engine.request v ~n:48 ~mode:fast ~bindings
            ~prefetch:[ ("a", d1) ];
          Core.Engine.request v ~n:48 ~mode:fast ~bindings
            ~prefetch:[ ("a", d2) ];
        ]
    with
    | [ Some a; Some _ ] -> a.Core.Engine.measurement
    | _ -> Alcotest.fail "batch evaluation failed"
  in
  let distinct = 10 in
  (* > max_trace_entries = 8 *)
  for i = 0 to distinct - 1 do
    ignore (sweep (point i) 2 4)
  done;
  let s1 = Core.Engine.stats engine in
  Alcotest.(check int) "one fill per distinct binding" distinct
    s1.Core.Engine.trace_fills;
  (* New distances on a recent binding reuse its cached trace. *)
  ignore (sweep (point (distinct - 1)) 6 8);
  let s2 = Core.Engine.stats engine in
  Alcotest.(check int) "recent binding hits" (s1.Core.Engine.trace_hits + 1)
    s2.Core.Engine.trace_hits;
  Alcotest.(check int) "no new fill" s1.Core.Engine.trace_fills
    s2.Core.Engine.trace_fills;
  (* The oldest binding was evicted: a new sweep there re-captures, and
     the re-captured trace yields a bit-identical measurement to a
     fresh engine's direct (trace-free) evaluation of the same plan. *)
  let m = sweep (point 0) 6 8 in
  let s3 = Core.Engine.stats engine in
  Alcotest.(check int) "evicted binding refills"
    (s2.Core.Engine.trace_fills + 1) s3.Core.Engine.trace_fills;
  let fresh_engine = Core.Engine.create sgi in
  let m' =
    match
      Core.Engine.evaluate fresh_engine
        (Core.Engine.request v ~n:48 ~mode:fast ~bindings:(point 0)
           ~prefetch:[ ("a", 6) ])
    with
    | Some ev -> ev.Core.Engine.measurement
    | None -> Alcotest.fail "fresh evaluation failed"
  in
  Alcotest.(check bool) "identical after eviction" true
    (Core.Executor.cycles m = Core.Executor.cycles m')

(* --- engine/search level guarantees ----------------------------------- *)

let optimize ?sampling ?(batch = true) ?(incremental = false) ?(jobs = 1) () =
  let engine = Core.Engine.create ~jobs sgi in
  Core.Engine.set_sampling engine sampling;
  Core.Engine.set_batch_replay engine batch;
  Core.Engine.set_incremental engine incremental;
  let r = Core.Eco.optimize_with ~mode:fast engine Matmul.kernel ~n:48 in
  (r, Core.Engine.stats engine)

let test_batching_off_bit_identical () =
  let on, _ = optimize () in
  let off, _ = optimize ~batch:false () in
  Alcotest.(check bool) "same winner cycles" true
    (Core.Executor.cycles on.Core.Eco.measurement
    = Core.Executor.cycles off.Core.Eco.measurement);
  Alcotest.(check bool) "same winner point" true
    (on.Core.Eco.outcome.Core.Search.bindings
     = off.Core.Eco.outcome.Core.Search.bindings
    && on.Core.Eco.outcome.Core.Search.prefetch
       = off.Core.Eco.outcome.Core.Search.prefetch)

let test_sampled_search_jobs_deterministic () =
  let a, _ =
    optimize ~sampling:Memsim.Sampling.default ~incremental:true ~jobs:1 ()
  in
  let b, _ =
    optimize ~sampling:Memsim.Sampling.default ~incremental:true ~jobs:3 ()
  in
  Alcotest.(check bool) "jobs-independent winner" true
    (Core.Executor.cycles a.Core.Eco.measurement
    = Core.Executor.cycles b.Core.Eco.measurement)

let test_sampled_search_winner_is_exact () =
  let r, stats = optimize ~sampling:Memsim.Sampling.default () in
  Alcotest.(check bool) "estimates were used" true (stats.Core.Engine.sampled > 0);
  (* The committed measurement must equal an exact re-measurement of the
     winning point — never an extrapolated estimate. *)
  let o = r.Core.Eco.outcome in
  let program = o.Core.Search.program in
  let exact = Core.Executor.measure sgi Matmul.kernel ~n:48 ~mode:fast program in
  Alcotest.(check bool) "winner measured exactly" true
    (Core.Executor.cycles r.Core.Eco.measurement = Core.Executor.cycles exact)

let test_incremental_repricing_engages () =
  let r, stats = optimize ~incremental:true () in
  Alcotest.(check bool) "some candidates repriced" true
    (stats.Core.Engine.repriced > 0);
  Alcotest.(check bool) "sane winner" true
    (r.Core.Eco.measurement.Core.Executor.mflops > 0.0)

let suite =
  [
    Alcotest.test_case "Batch.replay_all ≡ K× replay_packed" `Quick
      test_replay_many_matches_packed;
    Alcotest.test_case "Batch mixed feeds ≡ replay_packed" `Quick
      test_batch_mixed_feed_matches_packed;
    Alcotest.test_case "replay_event ≡ replay_packed" `Quick
      test_replay_event_matches_packed;
    Alcotest.test_case "warm entry points agree" `Quick test_warm_variants_agree;
    Alcotest.test_case "sampler schedule" `Quick test_sampler_schedule;
    Alcotest.test_case "sampler chunking invariant" `Quick
      test_sampler_chunking_invariant;
    Alcotest.test_case "gap=0 degenerates to full replay" `Quick
      test_sampler_gap_zero_full_replay;
    Alcotest.test_case "counters extrapolate" `Quick test_counters_extrapolate;
    Alcotest.test_case "sampled estimate within ε (qcheck)" `Slow
      test_sampled_within_epsilon;
    Alcotest.test_case "sampled ranking preserved (qcheck)" `Slow
      test_sampled_preserves_ranking;
    Alcotest.test_case "sampled estimate deterministic" `Quick
      test_sampled_deterministic;
    Alcotest.test_case "batched ≡ unbatched (exact)" `Quick
      test_batched_matches_unbatched_exact;
    Alcotest.test_case "batched ≡ unbatched (sampled)" `Quick
      test_batched_matches_unbatched_sampled;
    Alcotest.test_case "reprice: base and best measured exactly" `Quick
      test_reprice_group_base_and_best_exact;
    Alcotest.test_case "reprice joint multi-array variation" `Quick
      test_reprice_joint_multi_array;
    Alcotest.test_case "reprice rejects differing array lists" `Quick
      test_reprice_rejects_differing_array_lists;
    Alcotest.test_case "joint reprice within ε (qcheck)" `Slow
      test_joint_reprice_within_epsilon;
    Alcotest.test_case "jacobi3d thrash group re-prices" `Quick
      test_jacobi3d_thrash_group_reprices;
    Alcotest.test_case "demand-trace LRU eviction" `Slow test_trace_lru_eviction;
    Alcotest.test_case "batching off is bit-identical" `Slow
      test_batching_off_bit_identical;
    Alcotest.test_case "sampled search jobs-deterministic" `Slow
      test_sampled_search_jobs_deterministic;
    Alcotest.test_case "sampled search winner is exact" `Slow
      test_sampled_search_winner_is_exact;
    Alcotest.test_case "incremental repricing engages" `Slow
      test_incremental_repricing_engages;
  ]
