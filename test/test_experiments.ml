(* Tests for the experiment harness: the paper's qualitative claims must
   hold in the reproduction (shape, not absolute numbers). *)

let fast = Core.Executor.Budget 60_000

(* Table 1 rows are computed once (they are the slowest fixture). *)
let t1 = lazy (Experiments.Table1.rows ~mode:(Core.Executor.Budget 400_000) ())

let row name = List.find (fun r -> r.Experiments.Table1.name = name) (Lazy.force t1)

let test_table1_row_count () =
  Alcotest.(check int) "11 rows" 11 (List.length (Lazy.force t1));
  Alcotest.(check int) "5 mm" 5
    (List.length (Experiments.Table1.mm_rows (Lazy.force t1)));
  Alcotest.(check int) "6 jacobi" 6
    (List.length (Experiments.Table1.jacobi_rows (Lazy.force t1)))

let test_table1_mm5_fewest_cycles () =
  (* The paper's headline: the balanced, prefetched version wins even
     though it has the most loads. *)
  let mm5 = row "mm5" in
  List.iter
    (fun r ->
      if r.Experiments.Table1.name <> "mm5" then begin
        Alcotest.(check bool)
          ("mm5 cycles < " ^ r.Experiments.Table1.name)
          true
          (mm5.Experiments.Table1.cycles < r.Experiments.Table1.cycles);
        Alcotest.(check bool)
          ("mm5 loads > " ^ r.Experiments.Table1.name)
          true
          (mm5.Experiments.Table1.loads > r.Experiments.Table1.loads)
      end)
    (Experiments.Table1.mm_rows (Lazy.force t1))

let test_table1_mm3_l2 () =
  (* Tiling all three loops slashes L2 misses (paper: mm3 vs mm1). *)
  let mm1 = row "mm1" and mm3 = row "mm3" in
  Alcotest.(check bool) "mm3 L2 misses much lower" true
    (mm3.Experiments.Table1.l2_misses < mm1.Experiments.Table1.l2_misses /. 2.0)

let test_table1_tlb_story () =
  (* Untiled-I versions cycle too many columns through the TLB. *)
  let mm2 = row "mm2" and mm4 = row "mm4" in
  Alcotest.(check bool) "mm2 TLB thrash vs mm4" true
    (mm2.Experiments.Table1.tlb_misses > 4.0 *. mm4.Experiments.Table1.tlb_misses)

let test_table1_prefetch_pairs () =
  (* Each prefetched Jacobi version: more loads, fewer cycles. *)
  List.iter
    (fun (without, with_) ->
      let a = row without and b = row with_ in
      Alcotest.(check bool) (with_ ^ " more loads") true
        (b.Experiments.Table1.loads > a.Experiments.Table1.loads);
      Alcotest.(check bool) (with_ ^ " fewer cycles") true
        (b.Experiments.Table1.cycles < a.Experiments.Table1.cycles))
    [ ("j1", "j2"); ("j3", "j4"); ("j5", "j6"); ("mm4", "mm5") ]

let test_table1_jacobi_tiling_helps_l2 () =
  let j1 = row "j1" and j5 = row "j5" in
  Alcotest.(check bool) "j5 fewer L2 misses than j1" true
    (j5.Experiments.Table1.l2_misses < j1.Experiments.Table1.l2_misses)

let test_table1_render () =
  let lines = Experiments.Table1.render (Lazy.force t1) in
  Alcotest.(check int) "header + 11 rows" 12 (List.length lines)

let test_table2_render () =
  let lines = Experiments.Table2.render () in
  Alcotest.(check int) "header + 2 machines" 3 (List.length lines);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions R10000" true
    (List.exists (contains "R10000") lines)

let test_table4_headline_first () =
  let vs = Experiments.Table4.variants () in
  Alcotest.(check bool) "non-empty" true (vs <> []);
  let first = List.hd vs in
  Alcotest.(check bool) "headline copies b" true
    (List.exists
       (fun (c : Core.Variant.copy_spec) -> c.Core.Variant.array = "b")
       first.Core.Variant.copies)

let test_series_stats () =
  let s = Experiments.Series.make "x" 'x' [ (1, 10.0); (2, 20.0); (3, 30.0) ] in
  Alcotest.(check (float 1e-9)) "mean" 20.0 (Experiments.Series.mean s);
  Alcotest.(check (float 1e-9)) "min" 10.0 (Experiments.Series.minimum s);
  Alcotest.(check (float 1e-9)) "max" 30.0 (Experiments.Series.maximum s)

let test_series_render () =
  let s1 = Experiments.Series.make "a" 'a' [ (1, 1.0); (2, 2.0) ] in
  let s2 = Experiments.Series.make "b" 'b' [ (1, 2.0); (2, 1.0) ] in
  Alcotest.(check int) "table rows" 3 (List.length (Experiments.Series.table [ s1; s2 ]));
  Alcotest.(check bool) "chart non-empty" true
    (List.length (Experiments.Series.chart ~height:8 [ s1; s2 ]) > 8);
  Alcotest.(check int) "summaries" 2
    (List.length (Experiments.Series.summary [ s1; s2 ]))

let test_fig4_smoke () =
  let r =
    Experiments.Fig4.run ~mode:fast ~sizes:[ 32; 48 ] ~tune_n:48
      Machine.generic_small
  in
  Alcotest.(check int) "four series" 4 (List.length r.Experiments.Fig4.series);
  List.iter
    (fun s ->
      Alcotest.(check int) "two points" 2
        (List.length s.Experiments.Series.points);
      Alcotest.(check bool)
        (s.Experiments.Series.label ^ " positive")
        true
        (Experiments.Series.minimum s > 0.0))
    r.Experiments.Fig4.series;
  Alcotest.(check bool) "render works" true
    (List.length (Experiments.Fig4.render r) > 10)

let test_fig5_smoke () =
  let r =
    Experiments.Fig5.run ~mode:fast ~sizes:[ 24; 32 ] ~tune_n:32
      Machine.generic_small
  in
  Alcotest.(check int) "two series" 2 (List.length r.Experiments.Fig5.series);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Experiments.Series.label ^ " positive")
        true
        (Experiments.Series.minimum s > 0.0))
    r.Experiments.Fig5.series

let test_run_all_names () =
  Alcotest.(check int) "fifteen experiments" 15
    (List.length Experiments.Run_all.names);
  match Experiments.Run_all.run ~print:ignore "nonsense" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown name accepted"

let test_run_one_table2 () =
  let lines = ref [] in
  Experiments.Run_all.run ~print:(fun l -> lines := l :: !lines) "table2";
  Alcotest.(check bool) "printed something" true (List.length !lines > 3)

let suite =
  [
    Alcotest.test_case "table1: row count" `Quick test_table1_row_count;
    Alcotest.test_case "table1: mm5 wins with most loads" `Quick
      test_table1_mm5_fewest_cycles;
    Alcotest.test_case "table1: mm3 slashes L2" `Quick test_table1_mm3_l2;
    Alcotest.test_case "table1: TLB thrash story" `Quick test_table1_tlb_story;
    Alcotest.test_case "table1: prefetch pairs" `Quick test_table1_prefetch_pairs;
    Alcotest.test_case "table1: jacobi tiling helps L2" `Quick
      test_table1_jacobi_tiling_helps_l2;
    Alcotest.test_case "table1: render" `Quick test_table1_render;
    Alcotest.test_case "table2: render" `Quick test_table2_render;
    Alcotest.test_case "table4: headline first" `Quick test_table4_headline_first;
    Alcotest.test_case "series: stats" `Quick test_series_stats;
    Alcotest.test_case "series: render" `Quick test_series_render;
    Alcotest.test_case "fig4: smoke" `Slow test_fig4_smoke;
    Alcotest.test_case "fig5: smoke" `Slow test_fig5_smoke;
    Alcotest.test_case "run_all: names" `Quick test_run_all_names;
    Alcotest.test_case "run_all: table2" `Quick test_run_one_table2;
  ]
