(* Property tests for the persistent performance database: whatever a
   sequence of appends (possibly interleaved across handles, possibly
   killed mid-frame) puts on disk, a reload must see exactly the
   surviving records; compaction and reopening must be observationally
   identical to the store they started from; and the nearest-neighbor
   lookup must be a deterministic function of the store's contents
   under its documented metric. *)

let temp_db () =
  let file = Filename.temp_file "eco_test_perfdb" ".db" in
  Sys.remove file;
  file

let with_db f =
  let file = temp_db () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

(* --- generators --- *)

let gen_name = QCheck.Gen.(oneofl [ "mm"; "jacobi"; "stencil"; "tri" ])
let gen_machine = QCheck.Gen.(oneofl [ "sgi"; "sparc"; "modern" ])

let gen_point =
  QCheck.Gen.(
    let* variant = oneofl [ "v1"; "v2"; "v3" ] in
    let* ti = int_range 1 64 in
    let* tj = int_range 1 64 in
    let* u = int_range 1 8 in
    let* npf = int_range 0 2 in
    let* dists = list_repeat npf (int_range 1 32) in
    let prefetch =
      List.sort compare (List.mapi (fun i d -> (Printf.sprintf "a%d" i, d)) dists)
    in
    let* cycles = float_range 1.0 1e9 in
    let* mflops = float_range 0.1 5000.0 in
    return
      {
        Perfdb.variant;
        bindings = List.sort compare [ ("ti", ti); ("tj", tj); ("u", u) ];
        prefetch;
        cycles;
        mflops;
      })

let gen_capacity =
  QCheck.Gen.(
    let* depth = int_range 3 5 in
    let* entries = list_repeat depth (float_range 2.0 24.0) in
    return (Array.of_list entries))

let gen_summary =
  QCheck.Gen.(
    let* kernel = gen_name in
    let* machine = gen_machine in
    let* capacity = gen_capacity in
    let* n = int_range 8 512 in
    let* frontier = list_size (int_range 1 12) gen_point in
    let best =
      List.hd (List.sort (fun a b -> compare (a.Perfdb.cycles, a) (b.Perfdb.cycles, b)) frontier)
    in
    return { Perfdb.kernel; machine; capacity; n; best; frontier })

let gen_measurement =
  QCheck.Gen.(
    let* key = string_size ~gen:(char_range 'a' 'z') (int_range 4 16) in
    let* kernel = gen_name in
    let* machine = gen_machine in
    let* n = int_range 8 512 in
    let* payload = string_size (int_range 0 64) in
    return (key, kernel, machine, n, payload))

type op =
  | Add_measurement of (string * string * string * int * string)
  | Add_summary of Perfdb.summary

let gen_op =
  QCheck.Gen.(
    oneof
      [
        map (fun m -> Add_measurement m) gen_measurement;
        map (fun s -> Add_summary s) gen_summary;
      ])

let gen_ops = QCheck.Gen.(list_size (int_range 0 40) gen_op)

let apply db = function
  | Add_measurement (key, kernel, machine, n, payload) ->
    ignore (Perfdb.add_measurement db ~key ~kernel ~machine ~n ~payload)
  | Add_summary s -> Perfdb.add_summary db s

(* Observable state of a store: every measurement key's payload plus
   every summary, in a canonical order. *)
let observe db =
  let summaries = ref [] in
  Perfdb.iter_summaries db (fun s -> summaries := s :: !summaries);
  List.sort
    (fun (a : Perfdb.summary) (b : Perfdb.summary) ->
      compare (a.kernel, a.machine, a.n) (b.kernel, b.machine, b.n))
    !summaries

let measurement_keys ops =
  List.sort_uniq compare
    (List.filter_map
       (function Add_measurement (k, _, _, _, _) -> Some k | _ -> None)
       ops)

let observe_measurements ops db =
  List.map (fun k -> (k, Perfdb.find_measurement db ~key:k)) (measurement_keys ops)

let summary_eq (a : Perfdb.summary) (b : Perfdb.summary) =
  a.kernel = b.kernel && a.machine = b.machine && a.n = b.n
  && a.capacity = b.capacity && a.best = b.best && a.frontier = b.frontier

let summaries_eq xs ys =
  List.length xs = List.length ys && List.for_all2 summary_eq xs ys

let arb_ops = QCheck.make ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops)) gen_ops

(* 1. Round-trip: append a random batch, reopen, read back identically. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"append batch then reload reads back identically"
    ~count:60 arb_ops (fun ops ->
      with_db (fun file ->
          let db = Perfdb.load file in
          List.iter (apply db) ops;
          let live_s = observe db in
          let live_m = observe_measurements ops db in
          Perfdb.close db;
          let db2 = Perfdb.load file in
          let ok =
            summaries_eq live_s (observe db2)
            && live_m = observe_measurements ops db2
          in
          Perfdb.close db2;
          ok))

(* 2. Interleaved writers: two handles on the same file appending
   alternately — a reload sees the union (both append-only views). *)
let prop_interleaved =
  QCheck.Test.make ~name:"interleaved writers union on reload" ~count:40
    (QCheck.pair arb_ops arb_ops) (fun (ops1, ops2) ->
      with_db (fun file ->
          let a = Perfdb.load file in
          let b = Perfdb.load file in
          (* alternate appends between the two handles *)
          let rec weave xs ys =
            match (xs, ys) with
            | [], rest -> List.iter (apply b) rest
            | rest, [] -> List.iter (apply a) rest
            | x :: xs, y :: ys ->
              apply a x;
              apply b y;
              weave xs ys
          in
          weave ops1 ops2;
          Perfdb.close a;
          Perfdb.close b;
          let db = Perfdb.load file in
          let all = ops1 @ ops2 in
          (* every measurement key written by either handle is served *)
          let ok_m =
            List.for_all
              (fun k -> Perfdb.mem_measurement db ~key:k)
              (measurement_keys all)
          in
          (* every summary key written is present *)
          let ok_s =
            List.for_all
              (function
                | Add_summary s ->
                  Perfdb.find_summary db ~kernel:s.Perfdb.kernel
                    ~machine:s.Perfdb.machine ~n:s.Perfdb.n
                  <> None
                | Add_measurement _ -> true)
              all
          in
          Perfdb.close db;
          ok_m && ok_s))

(* 3. Crash recovery: truncating the file mid-frame (a killed writer)
   loses at most the torn tail — the prefix reloads cleanly and every
   record before the tear survives. *)
let prop_torn_tail =
  QCheck.Test.make ~name:"truncated tail recovers the complete prefix"
    ~count:40
    (QCheck.pair arb_ops QCheck.small_int)
    (fun (ops, cut) ->
      QCheck.assume (ops <> []);
      with_db (fun file ->
          let db = Perfdb.load file in
          List.iter (apply db) ops;
          Perfdb.close db;
          let size = (Unix.stat file).Unix.st_size in
          (* cut somewhere strictly inside the file but after the magic *)
          let cut_at = 13 + (cut mod max 1 (size - 13)) in
          let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd cut_at;
          Unix.close fd;
          let db2 = Perfdb.load file in
          (* the reload must not raise, and everything it reports as
             live must be a subset of what was written *)
          let written = measurement_keys ops in
          let survivors =
            List.filter (fun k -> Perfdb.mem_measurement db2 ~key:k) written
          in
          let st = Perfdb.stat db2 in
          Perfdb.close db2;
          (* after truncate-repair the file ends at a frame boundary *)
          let size2 = (Unix.stat file).Unix.st_size in
          List.length survivors <= List.length written
          && st.Perfdb.file_records >= 0
          && size2 <= cut_at))

(* 4. compact(store) == store, and loading the compacted file yields
   the same store again. *)
let prop_compact_identity =
  QCheck.Test.make ~name:"compact is observationally the identity"
    ~count:40 arb_ops (fun ops ->
      with_db (fun file ->
          let db = Perfdb.load file in
          List.iter (apply db) ops;
          let before_s = observe db in
          let before_m = observe_measurements ops db in
          Perfdb.compact db;
          let after_s = observe db in
          let after_m = observe_measurements ops db in
          Perfdb.close db;
          let db2 = Perfdb.load file in
          let reload_s = observe db2 in
          let reload_m = observe_measurements ops db2 in
          Perfdb.close db2;
          summaries_eq before_s after_s
          && before_m = after_m
          && summaries_eq before_s reload_s
          && before_m = reload_m))

(* 5. Nearest-neighbor: deterministic, and never beaten by any other
   summary of the same kernel under the documented metric. *)
let prop_nearest =
  QCheck.Test.make ~name:"nearest is deterministic and metric-minimal"
    ~count:60
    (QCheck.make
       QCheck.Gen.(triple gen_ops gen_capacity (int_range 8 512)))
    (fun (ops, capacity, n) ->
      with_db (fun file ->
          let db = Perfdb.load file in
          List.iter (apply db) ops;
          let kernels =
            List.sort_uniq compare
              (List.filter_map
                 (function
                   | Add_summary s -> Some s.Perfdb.kernel
                   | Add_measurement _ -> None)
                 ops)
          in
          let ok =
            List.for_all
              (fun kernel ->
                match Perfdb.nearest db ~kernel ~capacity ~n with
                | None -> false (* a summary exists for this kernel *)
                | Some s ->
                  let d = Perfdb.distance ~capacity ~n s in
                  let tie_key (x : Perfdb.summary) =
                    (Perfdb.distance ~capacity ~n x, x.n, x.machine)
                  in
                  let minimal = ref true in
                  Perfdb.iter_summaries db (fun c ->
                      if c.Perfdb.kernel = kernel then
                        if compare (tie_key c) (tie_key s) < 0 then
                          minimal := false);
                  (* deterministic: asking twice gives the same answer *)
                  let again =
                    match Perfdb.nearest db ~kernel ~capacity ~n with
                    | Some s' -> summary_eq s s'
                    | None -> false
                  in
                  !minimal && again && fst d >= 0.0 && snd d >= 0.0)
              kernels
          in
          Perfdb.close db;
          ok))

(* 6. Frontier invariants: whatever is merged in, a stored summary's
   frontier is sorted by cycles, starts with best, deduplicated, and
   capped at frontier_width. *)
let prop_frontier_invariants =
  QCheck.Test.make ~name:"stored frontiers are sorted, deduped, capped"
    ~count:60 arb_ops (fun ops ->
      with_db (fun file ->
          let db = Perfdb.load file in
          List.iter (apply db) ops;
          let ok = ref true in
          Perfdb.iter_summaries db (fun s ->
              let f = s.Perfdb.frontier in
              if List.length f > Perfdb.frontier_width then ok := false;
              (match f with
              | [] -> ok := false
              | hd :: _ -> if hd <> s.Perfdb.best then ok := false);
              let rec sorted = function
                | a :: (b :: _ as rest) ->
                  a.Perfdb.cycles <= b.Perfdb.cycles && sorted rest
                | _ -> true
              in
              if not (sorted f) then ok := false;
              let keys =
                List.map
                  (fun (p : Perfdb.point) -> (p.variant, p.bindings, p.prefetch))
                  f
              in
              if List.length (List.sort_uniq compare keys) <> List.length keys
              then ok := false);
          Perfdb.close db;
          !ok))

(* 7. Measurement dedup: re-adding an existing key is a no-op and
   reports false — the property behind resume idempotence. *)
let prop_measurement_dedup =
  QCheck.Test.make ~name:"re-adding a measurement key is a no-op"
    ~count:40 (QCheck.make gen_measurement)
    (fun (key, kernel, machine, n, payload) ->
      with_db (fun file ->
          let db = Perfdb.load file in
          let first = Perfdb.add_measurement db ~key ~kernel ~machine ~n ~payload in
          let again =
            Perfdb.add_measurement db ~key ~kernel ~machine ~n
              ~payload:(payload ^ "x")
          in
          let kept = Perfdb.find_measurement db ~key in
          Perfdb.close db;
          first && (not again) && kept = Some payload))

(* Non-property regression: a complete frame whose payload is damaged
   raises the typed Corrupt, not a decode crash. *)
let test_corrupt_frame () =
  with_db (fun file ->
      let db = Perfdb.load file in
      ignore
        (Perfdb.add_measurement db ~key:"k1" ~kernel:"mm" ~machine:"sgi" ~n:32
           ~payload:(String.make 64 'p'));
      ignore
        (Perfdb.add_measurement db ~key:"k2" ~kernel:"mm" ~machine:"sgi" ~n:32
           ~payload:(String.make 64 'q'));
      Perfdb.close db;
      (* flip a byte inside the first frame's payload: offset 13 (magic)
         + 8 (length) + 16 (digest) + a few bytes in *)
      let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd 45 Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xff" 0 1);
      Unix.close fd;
      match Perfdb.load file with
      | exception Perfdb.Corrupt _ -> ()
      | db ->
        Perfdb.close db;
        Alcotest.fail "damaged mid-file frame loaded without Corrupt")

let test_bad_magic () =
  with_db (fun file ->
      let oc = open_out_bin file in
      output_string oc "NOT-A-PERFDB\njunkjunkjunk";
      close_out oc;
      match Perfdb.load file with
      | exception Perfdb.Corrupt _ -> ()
      | db ->
        Perfdb.close db;
        Alcotest.fail "bad magic loaded without Corrupt")

(* The single-writer lock: conflicts are per-process (lockf record
   locks do not conflict within one process), and Unix.fork is
   forbidden once any suite has spawned a domain, so the second writer
   is this very test executable re-run in lock-probe mode (see the
   ECO_LOCK_CHILD hook below).  Its exit code carries the verdict. *)
let run_lock_child mode file =
  let env =
    Array.append (Unix.environment ())
      [| "ECO_LOCK_CHILD=" ^ file; "ECO_LOCK_MODE=" ^ mode |]
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env null null null
  in
  let _, status = Unix.waitpid [] pid in
  Unix.close null;
  status

(* Child-process hook: when re-invoked with ECO_LOCK_CHILD set, probe
   the lock and exit before Alcotest ever runs. *)
let () =
  match Sys.getenv_opt "ECO_LOCK_CHILD" with
  | None -> ()
  | Some file ->
    let expect_locked =
      Sys.getenv_opt "ECO_LOCK_MODE" <> Some "acquire"
    in
    let code =
      match Perfdb.load ~lock:true file with
      | exception Perfdb.Locked _ -> if expect_locked then 0 else 1
      | db ->
        Perfdb.close db;
        if expect_locked then 1 else 0
    in
    exit code

let test_writer_lock () =
  with_db (fun file ->
      let db = Perfdb.load ~lock:true file in
      Alcotest.(check bool) "holder knows it holds the lock" true
        (Perfdb.locked db);
      (* a second writer in another process must get the typed error *)
      (match run_lock_child "expect_locked" file with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED 1 -> Alcotest.fail "second writer acquired a held lock"
      | _ -> Alcotest.fail "locked child died abnormally");
      (* readers are never blocked *)
      let reader = Perfdb.load file in
      Alcotest.(check bool) "plain reader unaffected" false
        (Perfdb.locked reader);
      Perfdb.close reader;
      Perfdb.close db;
      (* a dead holder's lock must not outlive it: a child takes the
         lock and exits without releasing; the next taker must win *)
      (match run_lock_child "acquire" file with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "free lock refused a writer");
      (match run_lock_child "acquire" file with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "lock survived its holder's death");
      let db2 = Perfdb.load ~lock:true file in
      Alcotest.(check bool) "lock released on process death" true
        (Perfdb.locked db2);
      Perfdb.close db2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_interleaved;
    QCheck_alcotest.to_alcotest prop_torn_tail;
    QCheck_alcotest.to_alcotest prop_compact_identity;
    QCheck_alcotest.to_alcotest prop_nearest;
    QCheck_alcotest.to_alcotest prop_frontier_invariants;
    QCheck_alcotest.to_alcotest prop_measurement_dedup;
    Alcotest.test_case "mid-file damage raises Corrupt" `Quick
      test_corrupt_frame;
    Alcotest.test_case "bad magic raises Corrupt" `Quick test_bad_magic;
    Alcotest.test_case "single-writer advisory lock" `Quick test_writer_lock;
  ]
