(* The autotuning service: protocol plumbing (JSON, the shared error
   schema, the seeded service fault plans) and the daemon itself, run
   in-process over channel pairs — admission, interleaving, memo
   sharing across sessions, typed partial results (timeout, cancel,
   quarantine), checkpoint resume, request replay and degraded-db
   behavior. *)

module Json = Serve.Json
module Errors = Serve.Errors
module Daemon = Serve.Daemon

let sgi = Machine.sgi_r10000

(* --- JSON --- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2,3]";
      "{\"a\":1,\"b\":[true,\"x\"],\"c\":{\"d\":null}}";
      "{\"s\":\"line\\nbreak \\\"quoted\\\"\"}";
      "-42";
      "[1.5,0.25,1e+100]";
    ]
  in
  List.iter
    (fun s ->
      let v = Json.of_string s in
      Alcotest.(check string)
        ("roundtrip " ^ s) (Json.to_string v)
        (Json.to_string (Json.of_string (Json.to_string v))))
    cases;
  (* integral floats keep their decimal point so they stay floats *)
  Alcotest.(check string) "float print" "2.0" (Json.to_string (Json.Float 2.0));
  Alcotest.(check string)
    "float survives" "146.54068434088617"
    (Json.to_string (Json.of_string "146.54068434088617"));
  Alcotest.(check bool) "int stays int" true
    (Json.of_string "7" = Json.Int 7)

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | v ->
        Alcotest.failf "parsed %S to %s but expected an error" s
          (Json.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  let v = Json.of_string "{\"a\":{\"b\":3},\"c\":[1,2],\"d\":1.5}" in
  Alcotest.(check (option int)) "nested member" (Some 3)
    (Json.to_int_opt (Json.mem "b" (Json.mem "a" v)));
  Alcotest.(check (option int)) "missing" None
    (Json.to_int_opt (Json.mem "zzz" v));
  Alcotest.(check int) "list" 2 (List.length (Json.to_list (Json.mem "c" v)));
  Alcotest.(check (option (float 1e-9))) "int widens to float" (Some 1.0)
    (Json.to_float_opt (Json.mem "a" (Json.Obj [ ("a", Json.Int 1) ])))

(* --- the shared error schema --- *)

let test_error_schema () =
  let e =
    Errors.no_feasible_variant ~kernel:"matmul" ~n:64
      [
        ("matmul_v1", Core.Eco.No_model_point);
        ("matmul_v2", Core.Eco.Point_failed Core.Engine.Transient);
      ]
  in
  let j = Errors.to_json e in
  Alcotest.(check (option string)) "code" (Some "no_feasible_variant")
    (Json.to_string_opt (Json.mem "code" j));
  let data = Json.mem "data" j in
  Alcotest.(check (option int)) "n" (Some 64)
    (Json.to_int_opt (Json.mem "n" data));
  (match Json.to_list (Json.mem "per_variant" data) with
  | [ v1; v2 ] ->
    Alcotest.(check (option string)) "v1 code" (Some "no_model_point")
      (Json.to_string_opt (Json.mem "code" v1));
    Alcotest.(check (option string)) "v2 code" (Some "point_failed")
      (Json.to_string_opt (Json.mem "code" v2));
    Alcotest.(check (option string)) "v2 inner failure" (Some "transient")
      (Json.to_string_opt (Json.mem "failure" v2))
  | l -> Alcotest.failf "expected 2 per-variant entries, got %d" (List.length l));
  (* the CLI line is the same payload behind an "error: " prefix *)
  let line = Errors.to_cli_line e in
  Alcotest.(check bool) "cli line prefix" true
    (String.length line > 7 && String.sub line 0 7 = "error: ");
  let reparsed =
    Json.of_string (String.sub line 7 (String.length line - 7))
  in
  Alcotest.(check string) "cli line payload = rpc payload"
    (Json.to_string j) (Json.to_string reparsed);
  let busy = Errors.to_json (Errors.busy ~retry_after_s:1.5 "full") in
  Alcotest.(check (option (float 1e-9))) "retry hint" (Some 1.5)
    (Json.to_float_opt (Json.mem "retry_after_s" (Json.mem "data" busy)))

(* --- service fault plans --- *)

let test_service_faults () =
  let t = Faults.Service.of_spec "seed=7,hang=0.5,hang_s=0.01,disconnect=0.3" in
  Alcotest.(check string) "spec roundtrip"
    (Faults.Service.to_spec t)
    (Faults.Service.to_spec (Faults.Service.of_spec (Faults.Service.to_spec t)));
  (* pure and deterministic: same coordinates, same draw *)
  for batch = 1 to 20 do
    Alcotest.(check bool) "hang deterministic"
      (Faults.Service.hangs t ~session:"s1" ~batch)
      (Faults.Service.hangs t ~session:"s1" ~batch)
  done;
  (* distinct sessions get distinct streams *)
  let differs =
    List.exists
      (fun b ->
        Faults.Service.hangs t ~session:"s1" ~batch:b
        <> Faults.Service.hangs t ~session:"s2" ~batch:b)
      (List.init 50 (fun i -> i + 1))
  in
  Alcotest.(check bool) "sessions decorrelated" true differs;
  Alcotest.(check bool) "none injects nothing" false
    (Faults.Service.hangs Faults.Service.none ~session:"s1" ~batch:1);
  (match Faults.Service.of_spec "none" with
  | t -> Alcotest.(check bool) "none spec" false t.Faults.Service.active);
  (match Faults.Service.make ~hang:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hang=1.5 must be rejected");
  match Faults.Service.make ~kill_after:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kill_after=0 must be rejected"

(* --- driving the daemon in-process --- *)

let temp_dir () =
  let d = Filename.temp_file "eco_serve_test" "" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Feed the request lines through a daemon over temp-file channels and
   return every output line, parsed.  Stdin "closes" after the last
   line, so the daemon drains its sessions and exits. *)
let run_daemon_in_dir ~cfg lines =
  let infile = Filename.temp_file "eco_serve_in" ".jsonl" in
  let outfile = Filename.temp_file "eco_serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove infile with Sys_error _ -> ());
      try Sys.remove outfile with Sys_error _ -> ())
    (fun () ->
      let oc = open_out infile in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let ic = open_in infile in
      let oc = open_out outfile in
      let code = Daemon.run ~ic ~oc cfg in
      close_in ic;
      close_out oc;
      Alcotest.(check int) "daemon exit code" 0 code;
      let ic = open_in outfile in
      let rec read acc =
        match input_line ic with
        | line -> read (Json.of_string line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let out = read [] in
      close_in ic;
      out)

let run_daemon ?(cfg = Daemon.default_config) lines =
  let dir = temp_dir () in
  let cfg = { cfg with Daemon.checkpoint_dir = dir } in
  let out = run_daemon_in_dir ~cfg lines in
  (try rm_rf dir with Sys_error _ -> ());
  out

let response ~id out =
  List.find_opt
    (fun v -> Json.member "id" v = Some (Json.Int id))
    out

let result_of ~id out =
  match response ~id out with
  | Some v when Json.member "result" v <> None -> Json.mem "result" v
  | Some v -> Alcotest.failf "id %d answered with %s" id (Json.to_string v)
  | None -> Alcotest.failf "no response for id %d" id

let error_of ~id out =
  match response ~id out with
  | Some v when Json.member "error" v <> None -> Json.mem "error" v
  | Some v -> Alcotest.failf "id %d answered with %s" id (Json.to_string v)
  | None -> Alcotest.failf "no response for id %d" id

let notifications meth out =
  List.filter (fun v -> Json.member "method" v = Some (Json.String meth)) out

let sfield name v = Json.to_string_opt (Json.mem name v)
let ifield name v = Json.to_int_opt (Json.mem name v)

let tune_line ?(budget = 100_000) ~id ~kernel ~n () =
  Printf.sprintf
    "{\"id\":%d,\"method\":\"tune\",\"params\":{\"kernel\":%S,\"n\":%d,\"budget\":%d}}"
    id kernel n budget

(* The reference answer the one-shot pipeline produces for the same
   request — what every daemon path must reproduce. *)
let reference ~kernel ~n ~budget =
  let r =
    Core.Eco.optimize ~mode:(Core.Executor.Budget budget) sgi kernel ~n
  in
  let o = r.Core.Eco.outcome in
  ( o.Core.Search.variant.Core.Variant.name,
    String.concat " "
      (List.map
         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         o.Core.Search.bindings),
    Printf.sprintf "%.1f" r.Core.Eco.measurement.Core.Executor.mflops )

let check_matches_reference ~ctx (rvariant, rparams, rperf) result =
  Alcotest.(check (option string)) (ctx ^ ": variant") (Some rvariant)
    (sfield "best_variant" result);
  Alcotest.(check (option string)) (ctx ^ ": parameters") (Some rparams)
    (sfield "parameters" result);
  Alcotest.(check (option string)) (ctx ^ ": performance") (Some rperf)
    (sfield "performance" result)

let test_daemon_tune_and_memo_sharing () =
  let out =
    run_daemon
      [
        tune_line ~id:1 ~kernel:"matvec" ~n:64 ();
        tune_line ~id:2 ~kernel:"matvec" ~n:64 ();
        "{\"id\":9,\"method\":\"status\"}";
      ]
  in
  let r1 = result_of ~id:1 out and r2 = result_of ~id:2 out in
  Alcotest.(check (option string)) "r1 ok" (Some "ok") (sfield "status" r1);
  Alcotest.(check (option string)) "r2 ok" (Some "ok") (sfield "status" r2);
  let reference = reference ~kernel:Kernels.Matvec.kernel ~n:64 ~budget:100_000 in
  check_matches_reference ~ctx:"session 1" reference r1;
  check_matches_reference ~ctx:"session 2" reference r2;
  (* the sessions interleave on one engine: the repeat query is served
     entirely from the shared memo *)
  Alcotest.(check bool) "session 1 simulated" true (ifield "fresh" r1 > Some 0);
  Alcotest.(check (option int)) "repeat query: zero fresh simulations"
    (Some 0) (ifield "fresh" r2);
  Alcotest.(check bool) "repeat query: memo hits" true
    (ifield "hits" r2 > Some 0);
  Alcotest.(check (option string)) "status answered" (Some "off")
    (sfield "db" (result_of ~id:9 out))

let test_daemon_bad_requests () =
  let out =
    run_daemon
      [
        "this is not json";
        "{\"id\":1,\"method\":\"tune\",\"params\":{\"kernel\":\"nope\",\"n\":32}}";
        "{\"id\":2,\"method\":\"tune\",\"params\":{\"n\":32}}";
        "{\"id\":3,\"method\":\"frobnicate\"}";
        "{\"id\":4,\"method\":\"cancel\",\"params\":{\"session\":77}}";
      ]
  in
  Alcotest.(check (option string)) "unknown kernel" (Some "bad_request")
    (sfield "code" (error_of ~id:1 out));
  Alcotest.(check (option string)) "missing kernel" (Some "bad_request")
    (sfield "code" (error_of ~id:2 out));
  Alcotest.(check (option string)) "unknown method" (Some "bad_request")
    (sfield "code" (error_of ~id:3 out));
  (* cancel of an unknown session reports false rather than erroring *)
  Alcotest.(check bool) "cancel miss" true
    (Json.mem "cancelled" (result_of ~id:4 out) = Json.Bool false);
  (* a parse failure is answered with id null *)
  let parse_errors =
    List.filter
      (fun v ->
        Json.member "id" v = Some Json.Null && Json.member "error" v <> None)
      out
  in
  Alcotest.(check int) "parse error answered" 1 (List.length parse_errors)

let test_daemon_admission_control () =
  let cfg = { Daemon.default_config with Daemon.max_live = 1; max_queue = 1 } in
  let out =
    run_daemon ~cfg
      [
        tune_line ~id:1 ~kernel:"matvec" ~n:64 ();
        tune_line ~id:2 ~kernel:"matvec" ~n:48 ();
        tune_line ~id:3 ~kernel:"matvec" ~n:32 ();
      ]
  in
  (* one live, one queued, the third bounced with a typed busy error *)
  Alcotest.(check (option string)) "first runs" (Some "ok")
    (sfield "status" (result_of ~id:1 out));
  Alcotest.(check (option string)) "second queued then runs" (Some "ok")
    (sfield "status" (result_of ~id:2 out));
  let e = error_of ~id:3 out in
  Alcotest.(check (option string)) "third busy" (Some "busy") (sfield "code" e);
  Alcotest.(check bool) "retry hint" true
    (Json.to_float_opt (Json.mem "retry_after_s" (Json.mem "data" e)) <> None);
  let queued =
    List.exists
      (fun v -> Json.mem "queued" (Json.mem "params" v) = Json.Bool true)
      (notifications "accepted" out)
  in
  Alcotest.(check bool) "second was queued" true queued

let test_daemon_deadline_and_resume () =
  (* a tight per-request deadline yields a typed partial result... *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      let cfg =
        { Daemon.default_config with Daemon.checkpoint_dir = dir }
      in
      let out =
        run_daemon_in_dir ~cfg
          [
            "{\"id\":1,\"method\":\"tune\",\"params\":{\"kernel\":\"matmul\",\
             \"n\":96,\"budget\":200000,\"deadline_s\":0.08}}";
          ]
      in
      let r = result_of ~id:1 out in
      Alcotest.(check (option string)) "timed out" (Some "timeout")
        (sfield "status" r);
      Alcotest.(check bool) "partial best reported" true
        (sfield "best_variant" r <> None);
      Alcotest.(check bool) "checkpoint advertised" true
        (sfield "checkpoint" r <> None);
      (* ...and a fresh daemon resumes that checkpoint to the same
         answer the uninterrupted pipeline finds *)
      let out2 =
        run_daemon_in_dir ~cfg
          [ tune_line ~id:2 ~kernel:"matmul" ~n:96 ~budget:200_000 () ]
      in
      let r2 = result_of ~id:2 out2 in
      Alcotest.(check (option string)) "completes" (Some "ok")
        (sfield "status" r2);
      Alcotest.(check bool) "resumed from the partial's checkpoint" true
        (Json.mem "resumed" r2 = Json.Bool true);
      let reference =
        reference ~kernel:Kernels.Matmul.kernel ~n:96 ~budget:200_000
      in
      check_matches_reference ~ctx:"resumed" reference r2)

let test_daemon_cancel_and_shutdown () =
  let out =
    run_daemon
      [
        tune_line ~id:1 ~kernel:"matmul" ~n:96 ~budget:200_000 ();
        "{\"id\":2,\"method\":\"cancel\",\"params\":{\"session\":1}}";
        "{\"id\":3,\"method\":\"shutdown\"}";
        tune_line ~id:4 ~kernel:"matvec" ~n:64 ();
      ]
  in
  Alcotest.(check bool) "cancel acknowledged" true
    (Json.mem "cancelled" (result_of ~id:2 out) = Json.Bool true);
  Alcotest.(check (option string)) "session cancelled" (Some "cancelled")
    (sfield "status" (result_of ~id:1 out));
  Alcotest.(check bool) "shutdown acknowledged" true
    (Json.mem "ok" (result_of ~id:3 out) = Json.Bool true);
  Alcotest.(check (option string)) "tune after shutdown rejected"
    (Some "shutdown")
    (sfield "code" (error_of ~id:4 out))

let test_daemon_watchdog_quarantine () =
  let cfg =
    {
      Daemon.default_config with
      Daemon.watchdog_s = 0.01;
      watchdog_retries = 1;
      watchdog_backoff_s = 0.001;
      service_faults =
        Faults.Service.make ~seed:3 ~hang:1.0 ~hang_s:0.03 ();
    }
  in
  let out = run_daemon ~cfg [ tune_line ~id:1 ~kernel:"matvec" ~n:64 () ] in
  let r = result_of ~id:1 out in
  Alcotest.(check (option string)) "quarantined" (Some "quarantined")
    (sfield "status" r);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "reason mentions the watchdog" true
    (match sfield "reason" r with
    | Some reason -> contains reason "stalled"
    | None -> false)

let test_daemon_disconnect_drops_session () =
  let cfg =
    {
      Daemon.default_config with
      Daemon.progress_every_s = 0.005;
      service_faults = Faults.Service.make ~seed:5 ~disconnect:1.0 ();
    }
  in
  let out =
    run_daemon ~cfg
      [ tune_line ~id:1 ~kernel:"matmul" ~n:96 ~budget:200_000 () ]
  in
  (* the client is gone: no final response, a drop notification instead *)
  Alcotest.(check bool) "no response to the vanished client" true
    (response ~id:1 out = None);
  Alcotest.(check int) "session_dropped notification" 1
    (List.length (notifications "session_dropped" out))

let test_daemon_recovery_replay () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      Unix.mkdir dir 0o755;
      (* a dead daemon's orphaned request file... *)
      let oc =
        open_out (Filename.concat dir "session-deadbeef.req")
      in
      output_string oc
        "{\"id\":41,\"params\":{\"kernel\":\"matvec\",\"n\":64,\
         \"budget\":100000}}\n";
      close_out oc;
      (* ...and one torn beyond parsing, which must be dropped *)
      let oc = open_out (Filename.concat dir "session-torn.req") in
      output_string oc "{\"id\":42,\"par";
      close_out oc;
      let cfg =
        { Daemon.default_config with Daemon.checkpoint_dir = dir }
      in
      let out = run_daemon_in_dir ~cfg [] in
      (match notifications "recovered" out with
      | [ n ] ->
        let p = Json.mem "params" n in
        Alcotest.(check bool) "original id carried" true
          (Json.mem "session" p = Json.Int 41);
        Alcotest.(check (option string)) "replayed to completion" (Some "ok")
          (sfield "status" p);
        let reference =
          reference ~kernel:Kernels.Matvec.kernel ~n:64 ~budget:100_000
        in
        check_matches_reference ~ctx:"recovered" reference p
      | l -> Alcotest.failf "expected 1 recovered notification, got %d"
               (List.length l));
      Alcotest.(check bool) "request files consumed" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".req"))
           (Sys.readdir dir)))

let test_daemon_degraded_db () =
  let store = Filename.temp_file "eco_serve_db" ".db" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove store with Sys_error _ -> ())
    (fun () ->
      (* a healthy store... *)
      Sys.remove store;
      let db = Perfdb.load store in
      ignore
        (Perfdb.add_measurement db ~key:"k1" ~kernel:"matvec"
           ~machine:"SGI R10000" ~n:64 ~payload:"payload");
      Perfdb.close db;
      (* ...corrupted in place *)
      let oc =
        open_out_gen [ Open_wronly; Open_binary ] 0o644 store
      in
      seek_out oc 13;
      output_string oc "XXXXXXXXXX";
      close_out oc;
      let cfg =
        { Daemon.default_config with Daemon.db_file = Some store }
      in
      let out =
        run_daemon ~cfg
          [
            "{\"id\":1,\"method\":\"status\"}";
            tune_line ~id:2 ~kernel:"matvec" ~n:64 ();
          ]
      in
      (* the persistence tier degrades; the daemon keeps answering *)
      Alcotest.(check (option string)) "db degraded" (Some "degraded")
        (sfield "db" (result_of ~id:1 out));
      let r = result_of ~id:2 out in
      Alcotest.(check (option string)) "tune still ok" (Some "ok")
        (sfield "status" r);
      let reference =
        reference ~kernel:Kernels.Matvec.kernel ~n:64 ~budget:100_000
      in
      check_matches_reference ~ctx:"degraded-db answer" reference r)

let suite =
  [
    Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: parse errors" `Quick test_json_errors;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "errors: shared schema" `Quick test_error_schema;
    Alcotest.test_case "faults: service plans" `Quick test_service_faults;
    Alcotest.test_case "daemon: tune + shared memo" `Quick
      test_daemon_tune_and_memo_sharing;
    Alcotest.test_case "daemon: bad requests" `Quick test_daemon_bad_requests;
    Alcotest.test_case "daemon: admission control" `Quick
      test_daemon_admission_control;
    Alcotest.test_case "daemon: deadline + resume" `Quick
      test_daemon_deadline_and_resume;
    Alcotest.test_case "daemon: cancel + shutdown" `Quick
      test_daemon_cancel_and_shutdown;
    Alcotest.test_case "daemon: watchdog quarantine" `Quick
      test_daemon_watchdog_quarantine;
    Alcotest.test_case "daemon: client disconnect" `Quick
      test_daemon_disconnect_drops_session;
    Alcotest.test_case "daemon: crash recovery replay" `Quick
      test_daemon_recovery_replay;
    Alcotest.test_case "daemon: degraded db" `Quick test_daemon_degraded_db;
  ]
