(* Tests for the paper's core algorithm: variant derivation (phase 1),
   instantiation, and the model-guided empirical search (phase 2). *)

module Kernel = Kernels.Kernel
module Matmul = Kernels.Matmul
module Jacobi3d = Kernels.Jacobi3d
module Matvec = Kernels.Matvec

let sgi = Machine.sgi_r10000
let fast_mode = Core.Executor.Budget 30_000

let mm_variants = lazy (Core.Derive.variants sgi Matmul.kernel)
let jacobi_variants = lazy (Core.Derive.variants sgi Jacobi3d.kernel)

let find_constraint (v : Core.Variant.t) what_part =
  List.find_opt
    (fun c ->
      let d = Core.Constr.describe c in
      (* substring search *)
      let rec contains i =
        i + String.length what_part <= String.length d
        && (String.sub d i (String.length what_part) = what_part || contains (i + 1))
      in
      contains 0)
    v.Core.Variant.constraints

(* --- Param / Constr --- *)

let test_param_names () =
  Alcotest.(check string) "unroll" "ui" (Core.Param.unroll "i").Core.Param.name;
  Alcotest.(check string) "tile" "tk" (Core.Param.tile "k").Core.Param.name

let test_constr_poly_le () =
  let c =
    Core.Constr.Poly_le
      {
        poly = Analysis.Poly.mul (Analysis.Poly.var "x") (Analysis.Poly.var "y");
        bound = 32;
        what = "regs";
      }
  in
  let lookup b x = List.assoc x b in
  Alcotest.(check bool) "4*8 ok" true (Core.Constr.satisfied c (lookup [ ("x", 4); ("y", 8) ]));
  Alcotest.(check bool) "5*8 too big" false
    (Core.Constr.satisfied c (lookup [ ("x", 5); ("y", 8) ]))

let test_constr_pages () =
  let c =
    Core.Constr.Pages_le
      {
        elems = Analysis.Poly.var "e";
        runs = Analysis.Poly.var "r";
        page_elems = 512;
        bound = 4;
        what = "tlb";
      }
  in
  let lookup b x = List.assoc x b in
  Alcotest.(check bool) "small" true
    (Core.Constr.satisfied c (lookup [ ("e", 1024); ("r", 2) ]));
  Alcotest.(check bool) "too many runs" false
    (Core.Constr.satisfied c (lookup [ ("e", 1024); ("r", 8) ]));
  Alcotest.(check bool) "too many pages" false
    (Core.Constr.satisfied c (lookup [ ("e", 4096); ("r", 1) ]))

let test_constr_stride () =
  let c =
    Core.Constr.Stride_not_multiple
      { elems = Analysis.Poly.var "s"; modulus = 2048; what = "copy" }
  in
  let lookup v x = if x = "s" then v else raise Not_found in
  Alcotest.(check bool) "small ok" true (Core.Constr.satisfied c (lookup 128));
  Alcotest.(check bool) "exact multiple bad" false
    (Core.Constr.satisfied c (lookup 4096));
  Alcotest.(check bool) "non-multiple ok" true (Core.Constr.satisfied c (lookup 4097))

(* --- Derive: Matrix Multiply (the paper's Table 4) --- *)

let test_mm_variant_count () =
  let vs = Lazy.force mm_variants in
  Alcotest.(check bool)
    (Printf.sprintf "several variants (%d)" (List.length vs))
    true
    (List.length vs >= 4 && List.length vs <= 16)

let test_mm_register_loop_is_k () =
  List.iter
    (fun (v : Core.Variant.t) ->
      match List.rev v.Core.Variant.element_order with
      | innermost :: _ -> Alcotest.(check string) "k innermost" "k" innermost
      | [] -> Alcotest.fail "empty order")
    (Lazy.force mm_variants)

let test_mm_register_constraint () =
  (* Table 4: UI*UJ <= 32 on every variant. *)
  List.iter
    (fun v ->
      match find_constraint v "registers" with
      | Some (Core.Constr.Poly_le { poly; bound; _ }) ->
        Alcotest.(check int) "bound 32" 32 bound;
        Alcotest.(check string) "ui*uj" "ui*uj" (Analysis.Poly.to_string poly)
      | _ -> Alcotest.fail "missing register constraint")
    (Lazy.force mm_variants)

let test_mm_both_orders_derived () =
  let orders =
    List.sort_uniq compare
      (List.map
         (fun (v : Core.Variant.t) -> v.Core.Variant.element_order)
         (Lazy.force mm_variants))
  in
  Alcotest.(check bool) "IJK present" true (List.mem [ "i"; "j"; "k" ] orders);
  Alcotest.(check bool) "JIK present" true (List.mem [ "j"; "i"; "k" ] orders)

let test_mm_l1_constraint_2048 () =
  (* The paper's L1 bound: (2-1)/2 * 32KB/8B = 2048 elements. *)
  let v = List.hd (Lazy.force mm_variants) in
  match find_constraint v "L1 capacity" with
  | Some (Core.Constr.Poly_le { bound; _ }) ->
    Alcotest.(check int) "2048" 2048 bound
  | _ -> Alcotest.fail "missing L1 constraint"

let test_mm_l2_constraint_65536 () =
  let v = List.hd (Lazy.force mm_variants) in
  match find_constraint v "L2 capacity" with
  | Some (Core.Constr.Poly_le { bound; _ }) ->
    Alcotest.(check int) "65536" 65536 bound
  | _ -> Alcotest.fail "missing L2 constraint"

let test_mm_copy_variants_exist () =
  let vs = Lazy.force mm_variants in
  let copied (v : Core.Variant.t) =
    List.sort compare
      (List.map
         (fun (c : Core.Variant.copy_spec) -> c.Core.Variant.array)
         v.Core.Variant.copies)
  in
  Alcotest.(check bool) "copy-B variant (Fig 1b)" true
    (List.exists (fun v -> copied v = [ "b" ]) vs);
  Alcotest.(check bool) "copy-A-and-B variant (Fig 1c)" true
    (List.exists (fun v -> copied v = [ "a"; "b" ]) vs);
  Alcotest.(check bool) "no-copy variant kept for search" true
    (List.exists (fun v -> copied v = []) vs)

let test_mm_small_array_variant () =
  (* A variant whose L2 constraint involves n — the paper's v1, feasible
     only for small problem sizes. *)
  let vs = Lazy.force mm_variants in
  Alcotest.(check bool) "n-dependent L2 constraint" true
    (List.exists
       (fun (v : Core.Variant.t) ->
         List.exists
           (fun c -> List.mem "n" (Core.Constr.vars c))
           v.Core.Variant.constraints)
       vs)

(* --- Derive: Jacobi --- *)

let test_jacobi_variant_count () =
  let vs = Lazy.force jacobi_variants in
  Alcotest.(check bool)
    (Printf.sprintf "2..8 variants (%d)" (List.length vs))
    true
    (List.length vs >= 2 && List.length vs <= 8)

let test_jacobi_i_innermost () =
  List.iter
    (fun (v : Core.Variant.t) ->
      match List.rev v.Core.Variant.element_order with
      | innermost :: _ -> Alcotest.(check string) "i innermost" "i" innermost
      | [] -> Alcotest.fail "empty")
    (Lazy.force jacobi_variants)

let test_jacobi_never_copies () =
  (* The paper: copying is not profitable for the stencil. *)
  List.iter
    (fun (v : Core.Variant.t) ->
      Alcotest.(check int) "no copies" 0 (List.length v.Core.Variant.copies))
    (Lazy.force jacobi_variants)

let test_jacobi_multiple_outer_orders () =
  let orders =
    List.sort_uniq compare
      (List.map
         (fun (v : Core.Variant.t) -> v.Core.Variant.element_order)
         (Lazy.force jacobi_variants))
  in
  Alcotest.(check bool) "at least two loop orders" true (List.length orders >= 2)

let test_jacobi_register_constraint_rotation () =
  (* 3 rotating B registers per unrolled point: 3*uj*uk <= 32. *)
  let v = List.hd (Lazy.force jacobi_variants) in
  match find_constraint v "registers" with
  | Some (Core.Constr.Poly_le { poly; _ }) ->
    let at uj uk =
      Analysis.Poly.eval
        (fun x -> match x with "uj" -> uj | "uk" -> uk | _ -> 1)
        poly
    in
    Alcotest.(check int) "3*2*2" 12 (at 2 2);
    Alcotest.(check int) "3*1*1" 3 (at 1 1)
  | _ -> Alcotest.fail "missing register constraint"

(* --- Variant instantiation --- *)

let test_instantiate_all_mm_variants_sound () =
  let reference = Kernel.run_original Matmul.kernel 13 in
  let want = List.assoc "c" reference.Ir.Exec.arrays in
  List.iter
    (fun (v : Core.Variant.t) ->
      let bindings =
        List.map
          (fun p ->
            ( p.Core.Param.name,
              match p.Core.Param.kind with
              | Core.Param.Unroll -> 3
              | Core.Param.Tile -> 5 ))
          (Core.Variant.params v)
      in
      let p = Core.Variant.instantiate v ~bindings in
      let r = Ir.Exec.run ~params:[ ("n", 13) ] p in
      let got = List.assoc "c" r.Ir.Exec.arrays in
      Array.iteri
        (fun i w ->
          if Float.abs (w -. got.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
            Alcotest.failf "%s: c[%d] differs" v.Core.Variant.name i)
        want)
    (Lazy.force mm_variants)

let test_instantiate_all_jacobi_variants_sound () =
  let reference = Kernel.run_original Jacobi3d.kernel 11 in
  let want = List.assoc "a" reference.Ir.Exec.arrays in
  List.iter
    (fun (v : Core.Variant.t) ->
      let bindings =
        List.map
          (fun p ->
            ( p.Core.Param.name,
              match p.Core.Param.kind with
              | Core.Param.Unroll -> 2
              | Core.Param.Tile -> 4 ))
          (Core.Variant.params v)
      in
      let p = Core.Variant.instantiate v ~bindings in
      let r = Ir.Exec.run ~params:[ ("n", 11) ] p in
      let got = List.assoc "a" r.Ir.Exec.arrays in
      Array.iteri
        (fun i w ->
          if Float.abs (w -. got.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
            Alcotest.failf "%s: a[%d] differs" v.Core.Variant.name i)
        want)
    (Lazy.force jacobi_variants)

let test_feasible_respects_constraints () =
  let v =
    List.find
      (fun (v : Core.Variant.t) -> v.Core.Variant.copies <> [])
      (Lazy.force mm_variants)
  in
  let base =
    List.map (fun p -> (p.Core.Param.name, 2)) (Core.Variant.params v)
  in
  Alcotest.(check bool) "small point feasible" true
    (Core.Variant.feasible v ~n:64 base);
  let big = List.map (fun (k, _) -> (k, 64)) base in
  (* ui=uj=64 blows the register constraint. *)
  Alcotest.(check bool) "big point infeasible" false
    (Core.Variant.feasible v ~n:64 big)

let test_feasible_rejects_oversized_tiles () =
  let v = List.hd (Lazy.force mm_variants) in
  let bindings =
    List.map
      (fun p ->
        ( p.Core.Param.name,
          match p.Core.Param.kind with Core.Param.Unroll -> 2 | Core.Param.Tile -> 100 ))
      (Core.Variant.params v)
  in
  Alcotest.(check bool) "tile > n rejected" false
    (Core.Variant.feasible v ~n:50 bindings)

(* --- Executor --- *)

let test_executor_full_vs_budget_agree () =
  (* Budgeted cycles extrapolate close to the full simulation. *)
  let p = Matmul.kernel.Kernel.program in
  let full = Core.Executor.measure sgi Matmul.kernel ~n:48 ~mode:Core.Executor.Full p in
  let sampled =
    Core.Executor.measure sgi Matmul.kernel ~n:48
      ~mode:(Core.Executor.Budget 40_000) p
  in
  let rel =
    Float.abs
      (Core.Executor.cycles full -. Core.Executor.cycles sampled)
    /. Core.Executor.cycles full
  in
  Alcotest.(check bool)
    (Printf.sprintf "within 40%% (%.2f)" rel)
    true (rel < 0.4)

let test_executor_scale_factor () =
  let p = Matmul.kernel.Kernel.program in
  let m =
    Core.Executor.measure sgi Matmul.kernel ~n:64
      ~mode:(Core.Executor.Budget 10_000) p
  in
  Alcotest.(check bool) "scale > 1" true (m.Core.Executor.scale > 1.0);
  let full = Core.Executor.measure sgi Matmul.kernel ~n:16 ~mode:Core.Executor.Full p in
  Alcotest.(check (float 0.0)) "full scale = 1" 1.0 full.Core.Executor.scale

(* --- Search --- *)

let test_model_point_feasible () =
  List.iter
    (fun v ->
      match Core.Search.model_point sgi ~n:64 v with
      | Some bindings ->
        Alcotest.(check bool)
          (v.Core.Variant.name ^ " model point feasible")
          true
          (Core.Variant.feasible v ~n:64 bindings)
      | None -> Alcotest.failf "%s has no model point" v.Core.Variant.name)
    (Lazy.force mm_variants)

let test_search_improves_on_model_point () =
  let v = List.hd (Lazy.force mm_variants) in
  let engine = Core.Engine.create sgi in
  let log = Core.Search_log.create () in
  match Core.Search.tune_variant engine ~n:48 ~mode:fast_mode ~log v with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
    let model = Core.Search.model_point sgi ~n:48 v in
    let model_cycles =
      match model with
      | Some bindings -> (
        match
          Core.Search.measure_point engine ~n:48 ~mode:fast_mode v ~bindings
            ~prefetch:[]
        with
        | Some out -> Core.Executor.cycles out.Core.Search.measurement
        | None -> infinity)
      | None -> infinity
    in
    Alcotest.(check bool) "tuned <= model-initial" true
      (Core.Executor.cycles o.Core.Search.measurement <= model_cycles)

let test_search_result_feasible () =
  let v = List.hd (Lazy.force mm_variants) in
  let log = Core.Search_log.create () in
  match
    Core.Search.tune_variant (Core.Engine.create sgi) ~n:48 ~mode:fast_mode
      ~log v
  with
  | None -> Alcotest.fail "no outcome"
  | Some o ->
    Alcotest.(check bool) "bindings feasible" true
      (Core.Variant.feasible v ~n:48 o.Core.Search.bindings)

let test_search_deterministic () =
  let v = List.hd (Lazy.force mm_variants) in
  let run () =
    let log = Core.Search_log.create () in
    match
      Core.Search.tune_variant (Core.Engine.create sgi) ~n:32 ~mode:fast_mode
        ~log v
    with
    | Some o -> (o.Core.Search.bindings, o.Core.Search.prefetch)
    | None -> ([], [])
  in
  Alcotest.(check bool) "same result twice" true (run () = run ())

let test_search_log_records () =
  let v = List.hd (Lazy.force mm_variants) in
  let log = Core.Search_log.create () in
  ignore
    (Core.Search.tune_variant (Core.Engine.create sgi) ~n:32 ~mode:fast_mode
       ~log v);
  Alcotest.(check bool) "points logged" true (Core.Search_log.points log > 3);
  match Core.Search_log.best log with
  | Some best ->
    List.iter
      (fun e ->
        Alcotest.(check bool) "best is minimal" true
          (best.Core.Search_log.cycles <= e.Core.Search_log.cycles))
      (Core.Search_log.entries log)
  | None -> Alcotest.fail "no best"

(* --- Eco end-to-end --- *)

let test_eco_beats_naive () =
  let r = Core.Eco.optimize ~mode:fast_mode sgi Matmul.kernel ~n:48 in
  let naive =
    Core.Engine.measure_program r.Core.Eco.engine Matmul.kernel ~n:48
      ~mode:fast_mode Matmul.kernel.Kernel.program
  in
  Alcotest.(check bool) "tuned faster than naive" true
    (r.Core.Eco.measurement.Core.Executor.mflops > naive.Core.Executor.mflops)

let test_eco_remeasure_other_size () =
  let r = Core.Eco.optimize ~mode:fast_mode sgi Matmul.kernel ~n:48 in
  (match Core.Eco.remeasure ~mode:fast_mode sgi r ~n:64 with
  | Some m -> Alcotest.(check bool) "positive" true (m.Core.Executor.mflops > 0.0)
  | None -> Alcotest.fail "remeasure failed");
  (* Smaller than the tuned tiles: clamping must keep it feasible. *)
  match Core.Eco.remeasure ~mode:fast_mode sgi r ~n:16 with
  | Some m -> Alcotest.(check bool) "clamped tiles work" true (m.Core.Executor.mflops > 0.0)
  | None -> Alcotest.fail "remeasure with clamping failed"

let test_eco_matvec () =
  (* The optimizer handles a 2-loop kernel end to end. *)
  let r = Core.Eco.optimize ~mode:fast_mode sgi Matvec.kernel ~n:256 in
  Alcotest.(check bool) "positive result" true
    (r.Core.Eco.measurement.Core.Executor.mflops > 0.0)

let test_eco_optimized_code_is_correct () =
  let r = Core.Eco.optimize ~mode:fast_mode sgi Matmul.kernel ~n:32 in
  let got =
    Ir.Exec.run ~params:[ ("n", 17) ] r.Core.Eco.outcome.Core.Search.program
  in
  let want = Kernel.run_original Matmul.kernel 17 in
  let gc = List.assoc "c" got.Ir.Exec.arrays in
  let wc = List.assoc "c" want.Ir.Exec.arrays in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. gc.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        Alcotest.failf "optimized output differs at %d" i)
    wc

let suite =
  [
    Alcotest.test_case "param names" `Quick test_param_names;
    Alcotest.test_case "constr: poly_le" `Quick test_constr_poly_le;
    Alcotest.test_case "constr: pages_le" `Quick test_constr_pages;
    Alcotest.test_case "constr: stride" `Quick test_constr_stride;
    Alcotest.test_case "mm: variant count" `Quick test_mm_variant_count;
    Alcotest.test_case "mm: K innermost everywhere" `Quick
      test_mm_register_loop_is_k;
    Alcotest.test_case "mm: UI*UJ <= 32 (Table 4)" `Quick
      test_mm_register_constraint;
    Alcotest.test_case "mm: both loop orders (v1+v2)" `Quick
      test_mm_both_orders_derived;
    Alcotest.test_case "mm: L1 bound 2048 (Table 4)" `Quick
      test_mm_l1_constraint_2048;
    Alcotest.test_case "mm: L2 bound 65536 (Table 4)" `Quick
      test_mm_l2_constraint_65536;
    Alcotest.test_case "mm: copy variants" `Quick test_mm_copy_variants_exist;
    Alcotest.test_case "mm: small-array variant" `Quick
      test_mm_small_array_variant;
    Alcotest.test_case "jacobi: variant count" `Quick test_jacobi_variant_count;
    Alcotest.test_case "jacobi: I innermost" `Quick test_jacobi_i_innermost;
    Alcotest.test_case "jacobi: never copies" `Quick test_jacobi_never_copies;
    Alcotest.test_case "jacobi: multiple orders" `Quick
      test_jacobi_multiple_outer_orders;
    Alcotest.test_case "jacobi: rotation register constraint" `Quick
      test_jacobi_register_constraint_rotation;
    Alcotest.test_case "instantiate: all mm variants sound" `Quick
      test_instantiate_all_mm_variants_sound;
    Alcotest.test_case "instantiate: all jacobi variants sound" `Quick
      test_instantiate_all_jacobi_variants_sound;
    Alcotest.test_case "feasible: constraints" `Quick
      test_feasible_respects_constraints;
    Alcotest.test_case "feasible: tile <= n" `Quick
      test_feasible_rejects_oversized_tiles;
    Alcotest.test_case "executor: budget extrapolates" `Quick
      test_executor_full_vs_budget_agree;
    Alcotest.test_case "executor: scale factor" `Quick test_executor_scale_factor;
    Alcotest.test_case "search: model point feasible" `Quick
      test_model_point_feasible;
    Alcotest.test_case "search: improves on model point" `Quick
      test_search_improves_on_model_point;
    Alcotest.test_case "search: result feasible" `Quick test_search_result_feasible;
    Alcotest.test_case "search: deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "search: log records" `Quick test_search_log_records;
    Alcotest.test_case "eco: beats naive" `Quick test_eco_beats_naive;
    Alcotest.test_case "eco: remeasure other sizes" `Quick
      test_eco_remeasure_other_size;
    Alcotest.test_case "eco: matvec end-to-end" `Quick test_eco_matvec;
    Alcotest.test_case "eco: optimized code correct" `Quick
      test_eco_optimized_code_is_correct;
  ]
