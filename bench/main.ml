(* Benchmark harness.

   Two parts:
   1. Bechamel micro-benchmarks, one per paper artifact, timing a
      representative unit of the machinery that regenerates it (a
      simulated Table-1 row, a phase-1 derivation, one sweep point of
      each figure, one guided-search run, ...).
   2. The full reproduction: prints every table and figure series the
      paper reports (same output as `eco experiment`).

   Environment knobs (see Experiments.Config): ECO_BUDGET,
   ECO_TABLE1_BUDGET, ECO_FAST. *)

open Bechamel
open Toolkit

let quick_mode = Core.Executor.Budget 50_000

let bench_table1_row () =
  (* One mm row of Table 1 at a reduced budget. *)
  ignore
    (Experiments.Table1.rows ~mode:quick_mode ())

let bench_table2 () = ignore (Experiments.Table2.render ())

let bench_table4 () =
  ignore (Core.Derive.variants Machine.sgi_r10000 Kernels.Matmul.kernel)

(* Fresh engine per iteration: these benchmarks time the measurement
   itself, not a memo-table lookup. *)
let bench_fig4_point () =
  ignore
    (Baselines.Vendor_blas.measure
       (Core.Engine.create Machine.sgi_r10000)
       ~n:128 ~mode:quick_mode)

let bench_fig5_point () =
  ignore
    (Baselines.Native_compiler.measure
       (Core.Engine.create Machine.sgi_r10000)
       Kernels.Jacobi3d.kernel ~n:64 ~mode:quick_mode)

let bench_search_cost () =
  (* One full guided search on the small machine. *)
  ignore
    (Core.Eco.optimize ~mode:quick_mode ~max_variants:1 Machine.generic_small
       Kernels.Matmul.kernel ~n:48)

let bench_ablation_unit () =
  ignore
    (Baselines.Model_only.optimize
       (Core.Engine.create Machine.generic_small)
       Kernels.Matmul.kernel ~n:48 ~mode:quick_mode)

let bench_padding_unit () =
  ignore
    (Experiments.Padding.run ~mode:quick_mode ~sizes:[ 40 ] ~tune_n:40
       Machine.generic_small)

let bench_strategies_unit () =
  ignore
    (Baselines.Random_search.tune
       (Core.Engine.create Machine.generic_small)
       ~n:48 ~mode:quick_mode ~points:3 ~seed:1
       (List.hd (Core.Derive.variants Machine.generic_small Kernels.Matmul.kernel)))

let bench_conflicts_unit () =
  ignore
    (Memsim.Classify.of_program Machine.generic_small ~level:0
       ~params:[ ("n", 32) ]
       Kernels.Matmul.kernel.Kernels.Kernel.program)

let bench_cache_throughput =
  let h = Memsim.Hierarchy.create Machine.sgi_r10000 in
  fun () ->
    for i = 0 to 9_999 do
      Memsim.Hierarchy.load h ((i * 64) land 0xFFFFF)
    done

let bench_trace_replay =
  let t =
    Memsim.Trace.of_program ~params:[ ("n", 24) ]
      Kernels.Matmul.kernel.Kernels.Kernel.program
  in
  fun () ->
    ignore
      (Memsim.Trace.misses_under t
         (Machine.cache_level Machine.sgi_r10000 0))

let tests =
  Test.make_grouped ~name:"eco" ~fmt:"%s/%s"
    [
      Test.make ~name:"table1_rows" (Staged.stage bench_table1_row);
      Test.make ~name:"table2_render" (Staged.stage bench_table2);
      Test.make ~name:"table4_derive" (Staged.stage bench_table4);
      Test.make ~name:"fig4_sweep_point" (Staged.stage bench_fig4_point);
      Test.make ~name:"fig5_sweep_point" (Staged.stage bench_fig5_point);
      Test.make ~name:"search_cost_tune" (Staged.stage bench_search_cost);
      Test.make ~name:"ablation_model_only" (Staged.stage bench_ablation_unit);
      Test.make ~name:"padding_unit" (Staged.stage bench_padding_unit);
      Test.make ~name:"strategies_random_unit" (Staged.stage bench_strategies_unit);
      Test.make ~name:"conflicts_classify_unit" (Staged.stage bench_conflicts_unit);
      Test.make ~name:"memsim_10k_loads" (Staged.stage bench_cache_throughput);
      Test.make ~name:"trace_replay_sweep" (Staged.stage bench_trace_replay);
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "%-28s %16s@." "benchmark" "ns/run";
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%16.0f" e
        | _ -> Printf.sprintf "%16s" "-"
      in
      Format.printf "%-28s %s@." name estimate)
    results

(* Machine-readable search-cost summary, for tracking the numbers across
   commits without scraping the rendered tables. *)
let emit_search_json entries =
  let json_escape s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let entry (e : Experiments.Search_cost.entry) =
    Printf.sprintf
      "  {\"what\": \"%s\", \"machine\": \"%s\", \"points\": %d, \
       \"wall_seconds\": %.4f, \"best_mflops\": %.2f}"
      (json_escape e.Experiments.Search_cost.what)
      (json_escape e.Experiments.Search_cost.machine)
      e.Experiments.Search_cost.points e.Experiments.Search_cost.seconds
      e.Experiments.Search_cost.best_mflops
  in
  let oc = open_out "BENCH_search.json" in
  output_string oc
    ("[\n" ^ String.concat ",\n" (List.map entry entries) ^ "\n]\n");
  close_out oc;
  Format.printf "@.wrote BENCH_search.json (%d entries)@."
    (List.length entries)

(* Evaluation-path benchmark: the same guided search run through the
   bytecode fast path and through the reference closure interpreter.
   Both engines evaluate the identical candidate sequence (results are
   bit-identical; the [vm] test suite enforces it), so the ratio of
   wall time spent inside evaluation is exactly the fast path's
   speedup.  Emits BENCH_eval.json for tracking across commits. *)

let eval_bench_cases =
  [
    (Kernels.Matmul.kernel, 128);
    (Kernels.Jacobi3d.kernel, 64);
    (Kernels.Matvec.kernel, 256);
    (Kernels.Stencil2d.kernel, 128);
    (Kernels.Wavefront.kernel, 128);
  ]

let eval_bench_mode = Core.Executor.Budget 200_000

let eval_bench_run path kernel ~n =
  let engine = Core.Engine.create ~path Machine.sgi_r10000 in
  (* Baseline rows: plain per-candidate measurement.  Batching changes
     the fresh-vs-memo accounting (grouped candidates skip the memo), so
     leaving it on would make the fast and closures counters
     incomparable. *)
  Core.Engine.set_batch_replay engine false;
  let t0 = Unix.gettimeofday () in
  let r = Core.Eco.optimize_with ~mode:eval_bench_mode engine kernel ~n in
  let wall = Unix.gettimeofday () -. t0 in
  (Core.Engine.stats engine, wall, r.Core.Eco.measurement.Core.Executor.mflops)

(* The replay tier: fast path + default sampled simulation + batched
   multi-plan replay + incremental prefetch re-pricing, i.e. the
   [--sample --incremental] search.  Delivered throughput counts
   re-priced candidates alongside fresh simulations: both produce a
   scored candidate the search acts on. *)
let eval_bench_replay kernel ~n =
  let engine = Core.Engine.create ~path:Core.Executor.Fast Machine.sgi_r10000 in
  Core.Engine.set_sampling engine (Some Memsim.Sampling.default);
  Core.Engine.set_batch_replay engine true;
  Core.Engine.set_incremental engine true;
  let t0 = Unix.gettimeofday () in
  let r = Core.Eco.optimize_with ~mode:eval_bench_mode engine kernel ~n in
  let wall = Unix.gettimeofday () -. t0 in
  (Core.Engine.stats engine, wall, r.Core.Eco.measurement.Core.Executor.mflops)

(* K-plan prefetch-sweep microbenchmark over ONE captured demand trace:
   what a phase-2 distance sweep costs per candidate.  The unbatched
   path synthesizes and fully replays each plan's event stream; the
   replay tier prices the whole group from one slack-recording base
   replay plus one exact confirmation ([Demand_trace.reprice_group]).
   This isolates the evaluator's speedup from the end-to-end search
   numbers above, which are floored by the exact confirm/polish tail. *)
let sweep_microbench (kernel : Kernels.Kernel.t) ~n =
  let machine = Machine.sgi_r10000 in
  let v = List.hd (Core.Derive.variants machine kernel) in
  let bindings =
    match Core.Search.model_point machine ~n v with Some b -> b | None -> []
  in
  let program = Core.Variant.instantiate v ~bindings in
  let dt =
    Core.Demand_trace.capture machine kernel ~n ~mode:eval_bench_mode program
  in
  let arr =
    (List.hd (Ir.Program.heap_arrays (Core.Demand_trace.program dt)))
      .Ir.Decl.name
  in
  let k = 24 in
  let plans = Array.init k (fun i -> [ (arr, 1 + i) ]) in
  let rounds = 3 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to rounds do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int rounds
  in
  let unbatched () =
    Array.iter
      (fun plan ->
        let buf = Ir.Vm.Buf.create ~capacity:(1 lsl 16) () in
        let cut = Core.Demand_trace.synthesize dt ~plan ~into:buf in
        ignore
          (Core.Executor.measure_from_trace machine kernel ~n
             ~stats:(Core.Demand_trace.stats dt)
             ~events:(Ir.Vm.Buf.data buf)
             ~n_events:(Ir.Vm.Buf.length buf) ~cut))
      plans
  in
  let replay ?sampling () =
    match
      Core.Demand_trace.reprice_group ?sampling machine kernel ~n dt ~plans
    with
    | Some _ -> ()
    | None ->
      ignore (Core.Demand_trace.measure_plans ?sampling machine kernel ~n dt ~plans)
  in
  let t_unbatched = time unbatched in
  let t_replay = time (fun () -> replay ()) in
  let t_replay_sampled =
    time (fun () -> replay ~sampling:Memsim.Sampling.default ())
  in
  let per_sec t = if t > 0.0 then float_of_int k /. t else 0.0 in
  (* SoA batched-walk scaling: how the one-walk multi-plan replay
     ([measure_plans], no re-pricing) amortizes as the group grows past
     the old 16-plan comfort zone.  One round per K — these rows track
     scaling shape, not microbenchmark precision. *)
  let scaling =
    List.map
      (fun k ->
        let plans = Array.init k (fun i -> [ (arr, 1 + i) ]) in
        let t0 = Unix.gettimeofday () in
        ignore (Core.Demand_trace.measure_plans machine kernel ~n dt ~plans);
        let t = Unix.gettimeofday () -. t0 in
        (k, if t > 0.0 then float_of_int k /. t else 0.0))
      [ 16; 32; 64 ]
  in
  (k, per_sec t_unbatched, per_sec t_replay, per_sec t_replay_sampled, scaling)

let emit_eval_json () =
  let entries =
    List.map
      (fun ((kernel : Kernels.Kernel.t), n) ->
        let name = kernel.Kernels.Kernel.name in
        Format.printf "eval bench: %s n=%d...@." name n;
        let fast, fast_wall, fast_mflops =
          eval_bench_run Core.Executor.Fast kernel ~n
        in
        let slow, slow_wall, slow_mflops =
          eval_bench_run Core.Executor.Closures kernel ~n
        in
        (* Identical searches: same candidates, same winner. *)
        if fast.Core.Engine.fresh <> slow.Core.Engine.fresh then
          Format.printf
            "WARNING: %s paths evaluated different point counts (%d vs %d)@."
            name fast.Core.Engine.fresh slow.Core.Engine.fresh;
        if fast_mflops <> slow_mflops then
          Format.printf "WARNING: %s paths disagree (%.2f vs %.2f MFLOPS)@."
            name fast_mflops slow_mflops;
        let replay, replay_wall, replay_mflops = eval_bench_replay kernel ~n in
        let per_sec evals seconds =
          if seconds > 0.0 then float_of_int evals /. seconds else 0.0
        in
        let delivered = replay.Core.Engine.fresh + replay.Core.Engine.repriced in
        let replay_per_sec = per_sec delivered replay.Core.Engine.eval_seconds in
        (* Negative = the sampled search found a better point than the
           exact search; the winner itself is always exact-measured. *)
        let replay_degradation =
          if fast_mflops > 0.0 then
            (fast_mflops -. replay_mflops) /. fast_mflops *. 100.0
          else 0.0
        in
        let sweep_k, sweep_unb, sweep_rep, sweep_rep_sampled, sweep_scaling =
          sweep_microbench kernel ~n
        in
        let speedup =
          if fast.Core.Engine.eval_seconds > 0.0 then
            slow.Core.Engine.eval_seconds /. fast.Core.Engine.eval_seconds
          else 0.0
        in
        Format.printf
          "  fast: %d evals in %.3fs (%.0f evals/s)  closures: %.3fs \
           (%.0f evals/s)  speedup %.2fx@."
          fast.Core.Engine.fresh fast.Core.Engine.eval_seconds
          (per_sec fast.Core.Engine.fresh fast.Core.Engine.eval_seconds)
          slow.Core.Engine.eval_seconds
          (per_sec slow.Core.Engine.fresh slow.Core.Engine.eval_seconds)
          speedup;
        Format.printf
          "  replay: %d delivered (%d fresh, %d repriced, %d sampled) in \
           %.3fs (%.0f evals/s)  %.1f MFLOPS (deg %+.2f%%)@."
          delivered replay.Core.Engine.fresh replay.Core.Engine.repriced
          replay.Core.Engine.sampled replay.Core.Engine.eval_seconds
          replay_per_sec replay_mflops replay_degradation;
        Format.printf
          "  sweep (K=%d): unbatched %.0f evals/s  replay %.0f evals/s \
           (%.1fx)  replay+sampled %.0f evals/s (%.1fx)@."
          sweep_k sweep_unb sweep_rep
          (if sweep_unb > 0.0 then sweep_rep /. sweep_unb else 0.0)
          sweep_rep_sampled
          (if sweep_unb > 0.0 then sweep_rep_sampled /. sweep_unb else 0.0);
        List.iter
          (fun (k, rate) ->
            Format.printf "  sweep scaling K=%d: batched %.0f evals/s@." k rate)
          sweep_scaling;
        Printf.sprintf
          "  {\"kernel\": \"%s\", \"n\": %d, \"budget\": %d,\n\
          \   \"fast_evals\": %d, \"fast_eval_seconds\": %.4f, \
           \"fast_evals_per_sec\": %.1f,\n\
          \   \"fast_wall_seconds\": %.4f, \"trace_hits\": %d, \
           \"trace_fills\": %d,\n\
          \   \"closures_evals\": %d, \"closures_eval_seconds\": %.4f, \
           \"closures_evals_per_sec\": %.1f,\n\
          \   \"closures_wall_seconds\": %.4f, \"speedup\": %.2f,\n\
          \   \"replay_delivered_evals\": %d, \"replay_fresh\": %d, \
           \"replay_repriced\": %d, \"replay_sampled\": %d,\n\
          \   \"replay_batched_groups\": %d, \"replay_eval_seconds\": %.4f, \
           \"replay_evals_per_sec\": %.1f,\n\
          \   \"replay_wall_seconds\": %.4f, \"replay_mflops\": %.2f, \
           \"replay_degradation_pct\": %.2f,\n\
          \   \"sweep_k\": %d, \"sweep_unbatched_evals_per_sec\": %.1f, \
           \"sweep_replay_evals_per_sec\": %.1f,\n\
          \   \"sweep_replay_sampled_evals_per_sec\": %.1f, \
           \"sweep_speedup\": %.2f, \"sweep_sampled_speedup\": %.2f,\n\
          \   \"sweep_scaling\": [%s]}"
          name n
          (match eval_bench_mode with
          | Core.Executor.Budget b -> b
          | Core.Executor.Full -> 0)
          fast.Core.Engine.fresh fast.Core.Engine.eval_seconds
          (per_sec fast.Core.Engine.fresh fast.Core.Engine.eval_seconds)
          fast_wall fast.Core.Engine.trace_hits fast.Core.Engine.trace_fills
          slow.Core.Engine.fresh slow.Core.Engine.eval_seconds
          (per_sec slow.Core.Engine.fresh slow.Core.Engine.eval_seconds)
          slow_wall speedup delivered replay.Core.Engine.fresh
          replay.Core.Engine.repriced replay.Core.Engine.sampled
          replay.Core.Engine.batched_groups replay.Core.Engine.eval_seconds
          replay_per_sec replay_wall replay_mflops replay_degradation sweep_k
          sweep_unb sweep_rep sweep_rep_sampled
          (if sweep_unb > 0.0 then sweep_rep /. sweep_unb else 0.0)
          (if sweep_unb > 0.0 then sweep_rep_sampled /. sweep_unb else 0.0)
          (String.concat ", "
             (List.map
                (fun (k, rate) ->
                  Printf.sprintf
                    "{\"k\": %d, \"batched_evals_per_sec\": %.1f}" k rate)
                sweep_scaling)))
      eval_bench_cases
  in
  let oc = open_out "BENCH_eval.json" in
  output_string oc ("[\n" ^ String.concat ",\n" entries ^ "\n]\n");
  close_out oc;
  Format.printf "wrote BENCH_eval.json (%d entries)@." (List.length entries)

(* Robustness-layer overhead benchmark: the same guided search on a
   plain engine and on one carrying the full fault-tolerant protocol
   with a zero-rate active plan (draws, trials, aggregation — but no
   perturbation, so the searches are bit-identical).  The eval-seconds
   delta is the protocol's overhead on candidate evaluation; the
   acceptance bar is <5%.  Emits BENCH_faults.json. *)

let faults_bench_run ~protocol kernel ~n =
  let once () =
    let faults =
      match protocol with
      | None -> Faults.none
      | Some _ -> Faults.make ~seed:1 ()
    in
    let engine =
      match protocol with
      | None -> Core.Engine.create Machine.sgi_r10000
      | Some p -> Core.Engine.create ~faults ~protocol:p Machine.sgi_r10000
    in
    let r = Core.Eco.optimize_with ~mode:eval_bench_mode engine kernel ~n in
    (Core.Engine.stats engine, r.Core.Eco.measurement.Core.Executor.mflops)
  in
  (* Best of three: scheduler jitter on shared machines easily swamps
     the protocol's real cost, and the minimum wall time is the least
     contaminated estimate of it. *)
  let runs = [ once (); once (); once () ] in
  List.fold_left
    (fun (bs, bm) (s, m) ->
      if s.Core.Engine.eval_seconds < bs.Core.Engine.eval_seconds then (s, m)
      else (bs, bm))
    (List.hd runs) (List.tl runs)

let emit_faults_json () =
  let protocol = { Core.Engine.default_protocol with trials = 3 } in
  let entries =
    List.map
      (fun ((kernel : Kernels.Kernel.t), n) ->
        let name = kernel.Kernels.Kernel.name in
        Format.printf "faults bench: %s n=%d...@." name n;
        let plain, plain_mflops = faults_bench_run ~protocol:None kernel ~n in
        let guarded, guarded_mflops =
          faults_bench_run ~protocol:(Some protocol) kernel ~n
        in
        (* A zero-rate plan must not change the search at all. *)
        if plain_mflops <> guarded_mflops then
          Format.printf "WARNING: %s winners differ (%.2f vs %.2f MFLOPS)@."
            name plain_mflops guarded_mflops;
        let overhead_pct =
          if plain.Core.Engine.eval_seconds > 0.0 then
            (guarded.Core.Engine.eval_seconds
            -. plain.Core.Engine.eval_seconds)
            /. plain.Core.Engine.eval_seconds *. 100.0
          else 0.0
        in
        (* Sub-millisecond absolute deltas are wall-clock jitter, not
           protocol cost — don't let them fail a fast run. *)
        let overhead_ok =
          overhead_pct < 5.0
          || guarded.Core.Engine.eval_seconds -. plain.Core.Engine.eval_seconds
             < 0.010
        in
        Format.printf
          "  plain: %d evals in %.3fs  protocol: %.3fs (trials=%d)  \
           overhead %.2f%% ok=%b@."
          plain.Core.Engine.fresh plain.Core.Engine.eval_seconds
          guarded.Core.Engine.eval_seconds protocol.Core.Engine.trials
          overhead_pct overhead_ok;
        Printf.sprintf
          "  {\"kernel\": \"%s\", \"n\": %d, \"trials\": %d,\n\
          \   \"plain_evals\": %d, \"plain_eval_seconds\": %.4f,\n\
          \   \"protocol_evals\": %d, \"protocol_eval_seconds\": %.4f,\n\
          \   \"early_stops\": %d, \"winners_agree\": %b,\n\
          \   \"overhead_pct\": %.2f, \"overhead_ok\": %b}"
          name n protocol.Core.Engine.trials plain.Core.Engine.fresh
          plain.Core.Engine.eval_seconds guarded.Core.Engine.fresh
          guarded.Core.Engine.eval_seconds guarded.Core.Engine.early_stops
          (plain_mflops = guarded_mflops)
          overhead_pct overhead_ok)
      eval_bench_cases
  in
  let oc = open_out "BENCH_faults.json" in
  output_string oc ("[\n" ^ String.concat ",\n" entries ^ "\n]\n");
  close_out oc;
  Format.printf "wrote BENCH_faults.json (%d entries)@." (List.length entries)

(* Analytical-tier benchmark: how much cheaper is one model prediction
   than one simulation, and what does trusting the model's ranking buy
   (simulations saved at the default top-k) and cost (chosen-point
   degradation, rank agreement) on the real searches.  The search-side
   numbers come from the rankcheck experiment; the throughput numbers
   time the two evaluation paths on the same candidate points.  Emits
   BENCH_model.json. *)

let model_bench_machine = Machine.sgi_r10000

let emit_model_json () =
  let entries =
    List.map
      (fun ((kernel : Kernels.Kernel.t), n) ->
        let name = kernel.Kernels.Kernel.name in
        Format.printf "model bench: %s n=%d...@." name n;
        let row =
          Experiments.Rankcheck.run_one ~mode:eval_bench_mode
            model_bench_machine kernel ~n
        in
        (* Throughput: the same candidate points through the analytical
           model and through the simulator.  The model is cheap enough
           that timing one pass would measure clock noise, hence the
           repetition count. *)
        let v = List.hd (Core.Derive.variants model_bench_machine kernel) in
        let point ti =
          List.map
            (fun (p : Core.Param.t) ->
              match p.Core.Param.kind with
              | Core.Param.Tile -> (p.Core.Param.name, ti)
              | Core.Param.Unroll -> (p.Core.Param.name, 2))
            (Core.Variant.params v)
        in
        let tiles = [ 8; 12; 16; 20; 24; 28; 32; 40 ] in
        let prepared = Core.Predict.prepare v ~n in
        let reps = 500 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          List.iter
            (fun ti ->
              ignore
                (Core.Predict.score model_bench_machine prepared
                   ~bindings:(point ti) ~prefetch:[]))
            tiles
        done;
        let model_seconds = Unix.gettimeofday () -. t0 in
        let model_evals = reps * List.length tiles in
        let engine = Core.Engine.create model_bench_machine in
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun ti ->
            ignore
              (Core.Engine.evaluate engine
                 {
                   Core.Engine.variant = v;
                   n;
                   mode = eval_bench_mode;
                   bindings = point ti;
                   prefetch = [];
                   check = false;
                 }))
          tiles;
        let sim_seconds = Unix.gettimeofday () -. t0 in
        let sim_evals = (Core.Engine.stats engine).Core.Engine.fresh in
        let per_sec evals seconds =
          if seconds > 0.0 then float_of_int evals /. seconds else 0.0
        in
        let model_per_sec = per_sec model_evals model_seconds in
        let sim_per_sec = per_sec sim_evals sim_seconds in
        let cost_ratio =
          if model_per_sec > 0.0 then model_per_sec /. sim_per_sec else 0.0
        in
        let saved_ratio =
          if row.Experiments.Rankcheck.sims_on > 0 then
            float_of_int row.Experiments.Rankcheck.sims_off
            /. float_of_int row.Experiments.Rankcheck.sims_on
          else 0.0
        in
        Format.printf
          "  model: %.0f evals/s  sim: %.0f evals/s (%.0fx)  spearman %.3f  \
           recall %.2f  sims %d -> %d (%.2fx)  degradation %.2f%%@."
          model_per_sec sim_per_sec cost_ratio
          row.Experiments.Rankcheck.spearman row.Experiments.Rankcheck.recall
          row.Experiments.Rankcheck.sims_off row.Experiments.Rankcheck.sims_on
          saved_ratio row.Experiments.Rankcheck.degradation_pct;
        Printf.sprintf
          "  {\"kernel\": \"%s\", \"n\": %d, \"machine\": \"%s\", \
           \"top_k\": %d,\n\
          \   \"model_evals_per_sec\": %.1f, \"sim_evals_per_sec\": %.1f, \
           \"model_vs_sim_ratio\": %.1f,\n\
          \   \"spearman\": %.4f, \"recall\": %.4f,\n\
          \   \"sims_off\": %d, \"sims_on\": %d, \"prefiltered\": %d, \
           \"sims_saved_ratio\": %.2f,\n\
          \   \"mflops_off\": %.2f, \"mflops_on\": %.2f, \
           \"degradation_pct\": %.2f}"
          name n
          model_bench_machine.Machine.name
          Core.Engine.default_prefilter model_per_sec sim_per_sec cost_ratio
          row.Experiments.Rankcheck.spearman row.Experiments.Rankcheck.recall
          row.Experiments.Rankcheck.sims_off row.Experiments.Rankcheck.sims_on
          row.Experiments.Rankcheck.prefiltered saved_ratio
          row.Experiments.Rankcheck.mflops_off
          row.Experiments.Rankcheck.mflops_on
          row.Experiments.Rankcheck.degradation_pct)
      eval_bench_cases
  in
  let oc = open_out "BENCH_model.json" in
  output_string oc ("[\n" ^ String.concat ",\n" entries ^ "\n]\n");
  close_out oc;
  Format.printf "wrote BENCH_model.json (%d entries)@." (List.length entries)

(* Transfer warm-start benchmark: populate a performance database at
   one problem size and re-search a neighboring size against it.  The
   acceptance bar is >=30% fewer fresh simulations at <=2% chosen-point
   degradation on the paper's primary machine.  Emits BENCH_db.json.

   The degradation gate is deliberately ONE-SIDED: degradation_pct < 0
   means the warm search's chosen point BEAT the cold search's (the
   transferred frontier starts the descent in a basin the cold staged
   search misses — the recurring jacobi3d case, e.g. -8% at 64->72).
   That is a win, not an anomaly, so it passes; only losing more than
   2% of the cold point's MFLOPS fails the row. *)

let db_bench_machine = Machine.sgi_r10000

let db_bench_cases =
  [ (Kernels.Matmul.kernel, 128, 160); (Kernels.Jacobi3d.kernel, 64, 72) ]

let emit_db_json () =
  let entries =
    List.map
      (fun ((kernel : Kernels.Kernel.t), n_from, n_to) ->
        let name = kernel.Kernels.Kernel.name in
        Format.printf "db bench: %s %d->%d...@." name n_from n_to;
        let r =
          Experiments.Transfer.run_one ~mode:eval_bench_mode db_bench_machine
            kernel ~n_from ~n_to
        in
        let warm_ok =
          r.Experiments.Transfer.saved_pct >= 30.0
          && r.Experiments.Transfer.degradation_pct <= 2.0
        in
        Format.printf
          "  cold: %d sims (%.1f MFLOPS)  warm: %d sims (%.1f MFLOPS)  \
           saved %.1f%%  seeds %d  deg %+.2f%%  ok=%b@."
          r.Experiments.Transfer.sims_cold r.Experiments.Transfer.mflops_cold
          r.Experiments.Transfer.sims_warm r.Experiments.Transfer.mflops_warm
          r.Experiments.Transfer.saved_pct r.Experiments.Transfer.warm_seeds
          r.Experiments.Transfer.degradation_pct warm_ok;
        Printf.sprintf
          "  {\"kernel\": \"%s\", \"machine\": \"%s\", \"n_from\": %d, \
           \"n_to\": %d,\n\
          \   \"sims_cold\": %d, \"sims_warm\": %d, \"saved_pct\": %.2f,\n\
          \   \"db_hits\": %d, \"warm_seeds\": %d,\n\
          \   \"mflops_cold\": %.2f, \"mflops_warm\": %.2f,\n\
          \   \"degradation_pct\": %.2f, \"warm_ok\": %b}"
          name db_bench_machine.Machine.name n_from n_to
          r.Experiments.Transfer.sims_cold r.Experiments.Transfer.sims_warm
          r.Experiments.Transfer.saved_pct r.Experiments.Transfer.db_hits
          r.Experiments.Transfer.warm_seeds r.Experiments.Transfer.mflops_cold
          r.Experiments.Transfer.mflops_warm
          r.Experiments.Transfer.degradation_pct warm_ok)
      db_bench_cases
  in
  let oc = open_out "BENCH_db.json" in
  output_string oc ("[\n" ^ String.concat ",\n" entries ^ "\n]\n");
  close_out oc;
  Format.printf "wrote BENCH_db.json (%d entries)@." (List.length entries)

let () =
  if Array.exists (( = ) "--eval-bench") Sys.argv then emit_eval_json ()
  else if Array.exists (( = ) "--model-bench") Sys.argv then
    emit_model_json ()
  else if Array.exists (( = ) "--faults-bench") Sys.argv then
    emit_faults_json ()
  else if Array.exists (( = ) "--db-bench") Sys.argv then emit_db_json ()
  else begin
    Format.printf "=== Bechamel micro-benchmarks (one per paper artifact) ===@.";
    run_benchmarks ();
    Format.printf
      "@.=== Full reproduction of the paper's tables and figures ===@.";
    Experiments.Run_all.run_everything ~print:print_endline ();
    emit_search_json (Experiments.Search_cost.run ());
    emit_eval_json ();
    emit_faults_json ();
    emit_model_json ();
    emit_db_json ()
  end
