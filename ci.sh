#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# CLI tuner with parallel evaluation enabled.
set -eux

dune build
dune runtest

# Differential correctness budget: seeded random variant points and
# transformation pipelines checked against the reference interpreter.
dune exec bin/eco_cli.exe -- check -k matmul --seed 42 --trials 50
dune exec bin/eco_cli.exe -- check -k jacobi3d --seed 42 --trials 50

# Quick end-to-end smoke: a small tune with a 2-domain engine must
# succeed and report the engine's telemetry line.
dune exec bin/eco_cli.exe -- tune -k matmul -n 48 -b 50000 --jobs 2 | grep "engine:"

# Evaluation-path benchmark: the same tune through the bytecode fast
# path and the reference closure interpreter; emits BENCH_eval.json
# (evals/sec + speedup) for tracking across commits.
dune exec bench/main.exe -- --eval-bench
grep "speedup" BENCH_eval.json

echo "ci.sh: all checks passed"
