#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# CLI tuner with parallel evaluation enabled.
set -eux

dune build
dune runtest

# Differential correctness budget: seeded random variant points and
# transformation pipelines checked against the reference interpreter.
dune exec bin/eco_cli.exe -- check -k matmul --seed 42 --trials 50
dune exec bin/eco_cli.exe -- check -k jacobi3d --seed 42 --trials 50

# Quick end-to-end smoke: a small tune with a 2-domain engine must
# succeed and report the engine's telemetry line.
dune exec bin/eco_cli.exe -- tune -k matmul -n 48 -b 50000 --jobs 2 | grep "engine:"

# Evaluation-path benchmark: the same tune through the bytecode fast
# path and the reference closure interpreter; emits BENCH_eval.json
# (evals/sec + speedup) for tracking across commits.
dune exec bench/main.exe -- --eval-bench
grep "speedup" BENCH_eval.json

# Throughput regression gate.  Seed floors (matmul 275.4 / jacobi3d
# 97.2 fast-path evals/s, 20% timing-noise allowance) and the 2%
# sampled-degradation bound apply to the two seed kernels; the newer
# bench kernels (matvec / stencil2d / wavefront) track their numbers
# without a quality gate — their tiny exact searches make the
# degradation column a search-shape artifact, not an estimator error.
# Per-kernel sweep bars: matmul must hold the batched+sampled sweep at
# >= 12x over unbatched exact replay, jacobi3d (the former 1.10x
# stencil gap) at >= 4x.  Every kernel must carry a K=64 sweep-scaling
# row, and large batches must not invert: the K=64 batched rate has to
# beat the K=24 unbatched rate (the sub-pool split in
# Demand_trace.measure_plans is what keeps this true for the
# cache-hungry stencils).
python3 - <<'EOF'
import json
rows = json.load(open("BENCH_eval.json"))
seed = {"matmul": 275.4, "jacobi3d": 97.2}
sweep_bar = {"matmul": 12.0, "jacobi3d": 4.0}
ok = True
for r in rows:
    k = r["kernel"]
    if k in seed:
        floor = 0.8 * seed[k]
        if r["fast_evals_per_sec"] < floor:
            print(f'{k}: fast path {r["fast_evals_per_sec"]:.1f} evals/s < floor {floor:.1f}')
            ok = False
        if r["replay_degradation_pct"] > 2.0:
            print(f'{k}: replay degradation {r["replay_degradation_pct"]:+.2f}% > 2%')
            ok = False
    if r["replay_evals_per_sec"] <= r["fast_evals_per_sec"]:
        print(f'{k}: replay tier {r["replay_evals_per_sec"]:.1f} <= fast {r["fast_evals_per_sec"]:.1f} evals/s')
        ok = False
    sweep = max(r["sweep_speedup"], r["sweep_sampled_speedup"])
    if sweep < sweep_bar.get(k, 2.0):
        print(f'{k}: best sweep speedup {sweep:.1f}x < {sweep_bar.get(k, 2.0):.0f}x bar')
        ok = False
    scaling = {s["k"]: s["batched_evals_per_sec"] for s in r["sweep_scaling"]}
    if 64 not in scaling:
        print(f'{k}: no K=64 sweep-scaling row')
        ok = False
    elif scaling[64] <= r["sweep_unbatched_evals_per_sec"]:
        print(f'{k}: K=64 batched {scaling[64]:.1f} evals/s <= unbatched {r["sweep_unbatched_evals_per_sec"]:.1f}')
        ok = False
    print(f'eval gate: {k} sweep {sweep:.1f}x, K=64 {scaling.get(64, 0.0):.1f} vs unbatched {r["sweep_unbatched_evals_per_sec"]:.1f} evals/s')
raise SystemExit(0 if ok else 1)
EOF

# --- Batched, sampled and incremental replay -----------------------------

# Batched multi-plan replay is on by default and bit-identical: with
# sampling off, disabling it (and varying the worker count) must not
# change a byte of the answer.
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_batched.txt
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 --no-batch-replay \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_nobatch.txt
cmp ci_batched.txt ci_nobatch.txt
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 --no-batch-replay --jobs 3 \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_nobatch3.txt
cmp ci_batched.txt ci_nobatch3.txt

# Sampled + incremental equivalence smoke at the benchmarked operating
# point (the default spec's shrink needs a search-scale trace to be
# representative; tiny budgets should stay on the exact path): the
# estimator must engage (sampled and re-priced telemetry both nonzero)
# and the chosen point must stay within 2% of the exact search's — the
# winner itself is always confirmed and polished at exact precision.
dune exec bin/eco_cli.exe -- tune -k matmul -n 128 -b 200000 \
  > ci_exact_op.txt
dune exec bin/eco_cli.exe -- tune -k matmul -n 128 -b 200000 --sample --incremental \
  > ci_sampled.txt
grep "engine:" ci_sampled.txt | grep -q " sampled"
grep "engine:" ci_sampled.txt | grep -q " re-priced"
exact_mf=$(sed -n 's/^performance: *\([0-9.]*\) MFLOPS.*/\1/p' ci_exact_op.txt)
sampled_mf=$(sed -n 's/^performance: *\([0-9.]*\) MFLOPS.*/\1/p' ci_sampled.txt)
python3 -c "import sys; e, s = float(sys.argv[1]), float(sys.argv[2]); d = (e - s) / e * 100.0; print(f'sampled-vs-exact degradation {d:+.2f}%'); sys.exit(0 if d <= 2.0 else 1)" \
  "$exact_mf" "$sampled_mf"
rm -f ci_batched.txt ci_nobatch.txt ci_nobatch3.txt ci_exact_op.txt ci_sampled.txt

# End-to-end sampled wall-time gate at a search-scale budget: with
# shrink=4 sampling, incremental repricing and the adaptive
# confirmation policy (no --confirm override), the sampled search must
# finish the b=800k matmul tune at least 2.5x faster than the exact
# search (measured ~3.3x; the slack absorbs machine noise) while the
# reported winner — always re-measured exactly — stays within 2% of
# the exact search's.  The binary is invoked directly so the dune
# launcher's constant overhead does not dilute the ratio.
ECO=./_build/default/bin/eco_cli.exe
t0=$(date +%s.%N)
$ECO tune -k matmul -n 128 -b 800000 > ci_wall_exact.txt
t1=$(date +%s.%N)
$ECO tune -k matmul -n 128 -b 800000 --sample=shrink=4 --incremental \
  > ci_wall_sampled.txt
t2=$(date +%s.%N)
grep "engine:" ci_wall_sampled.txt | grep -q " sampled"
exact_mf=$(sed -n 's/^performance: *\([0-9.]*\) MFLOPS.*/\1/p' ci_wall_exact.txt)
sampled_mf=$(sed -n 's/^performance: *\([0-9.]*\) MFLOPS.*/\1/p' ci_wall_sampled.txt)
python3 -c "
import sys
t0, t1, t2, e, s = map(float, sys.argv[1:])
ratio = (t1 - t0) / (t2 - t1)
deg = (e - s) / e * 100.0
print(f'sampled wall gate: exact {t1-t0:.2f}s, sampled {t2-t1:.2f}s '
      f'({ratio:.2f}x), degradation {deg:+.2f}%')
sys.exit(0 if ratio >= 2.5 and deg <= 2.0 else 1)
" "$t0" "$t1" "$t2" "$exact_mf" "$sampled_mf"
rm -f ci_wall_exact.txt ci_wall_sampled.txt

# --- Analytical pre-filter -----------------------------------------------

# Reference answer with the pre-filter off (the default path).
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_nofilter.txt

# Explicitly disabling the pre-filter (K < 1) must take the identical
# code path: same winner, same performance line, byte for byte.
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 --prefilter=0 \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_prefilter0.txt
cmp ci_nofilter.txt ci_prefilter0.txt

# Armed search: the model must actually skip candidates (a nonzero
# pre-filtered count in the telemetry), and the two-stage search must
# be deterministic across worker counts.
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 --prefilter \
  > ci_armed1.txt
grep "engine:" ci_armed1.txt | grep -v " 0 pre-filtered"
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 --prefilter --jobs 2 \
  > ci_armed2.txt
grep -E "^(best variant|parameters|prefetch|performance):" ci_armed1.txt \
  > ci_armed1_ans.txt
grep -E "^(best variant|parameters|prefetch|performance):" ci_armed2.txt \
  > ci_armed2_ans.txt
cmp ci_armed1_ans.txt ci_armed2_ans.txt
rm -f ci_nofilter.txt ci_prefilter0.txt ci_armed1.txt ci_armed2.txt \
  ci_armed1_ans.txt ci_armed2_ans.txt

# Rank-agreement experiment smoke (reduced sweep; the summary line
# reports simulations saved and worst chosen-point degradation).
ECO_FAST=1 dune exec bin/eco_cli.exe -- experiment rankcheck | grep "fewer"

# --- Fault-tolerant measurement protocol ---------------------------------

# Reference answer for the robustness checks below.
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_clean.txt

# Value-preserving faults (transients + hangs, zero timing noise): the
# retry protocol must absorb every injected failure and reproduce the
# fault-free answer exactly, including the performance line.
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  --faults "seed=7,transient=0.05,hang=0.02" --trials 3 \
  | grep -E "^(best variant|parameters|prefetch|performance):" > ci_faulty.txt
cmp ci_clean.txt ci_faulty.txt

# Timing noise on top: the search must still complete and report a
# winner (near-ties may legitimately flip under noise, so only
# completion is asserted here; the noise-sensitivity experiment bounds
# the quality loss).
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  --faults "seed=7,noise=0.05,transient=0.02" --trials 225 \
  | grep "^best variant:"

# Crash-only search: a tune killed mid-run (simulated SIGKILL after 40
# fresh evaluations; periodic checkpoints only) must resume from its
# checkpoint and land on the identical final answer.
rm -f ci_ck.bin
set +e
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  --checkpoint ci_ck.bin --checkpoint-every 8 --die-after 40
rc=$?
set -e
test "$rc" -eq 3
dune exec bin/eco_cli.exe -- tune -k matmul -n 64 -b 100000 \
  --checkpoint ci_ck.bin > ci_resumed_full.txt
grep -q "^resumed:" ci_resumed_full.txt
grep -E "^(best variant|parameters|prefetch|performance):" ci_resumed_full.txt \
  > ci_resumed.txt
cmp ci_clean.txt ci_resumed.txt
rm -f ci_ck.bin ci_clean.txt ci_faulty.txt ci_resumed.txt ci_resumed_full.txt

# Protocol overhead benchmark: a zero-rate fault plan with 3 trials
# must cost <5% on evaluation time and find the same winners.
dune exec bench/main.exe -- --faults-bench
grep -q '"overhead_ok": true' BENCH_faults.json
! grep -q '"overhead_ok": false' BENCH_faults.json
! grep -q '"winners_agree": false' BENCH_faults.json

# --- Persistent performance database -------------------------------------

# Populate: a pre-filtered tune writing its aggregated measurements and
# summary record into a fresh store.  (n=80, not 64: below that the
# TLB-bound matmul_v3 variant wins, and it does not exist at larger
# sizes, so the transfer check below would have nothing to carry over.)
rm -f ci_db.bin
dune exec bin/eco_cli.exe -- tune -k matmul -n 80 -b 100000 --prefilter \
  --db ci_db.bin > ci_db_pop.txt
grep -E "^(best variant|parameters|prefetch|performance):" ci_db_pop.txt \
  > ci_db_pop_ans.txt
pop_fresh=$(sed -n 's/^engine: *\([0-9][0-9]*\) fresh evaluations.*/\1/p' ci_db_pop.txt)

# Exact-hit replay: with warm-starts off, the same tune must be served
# entirely from the store — zero fresh simulations, nonzero db hits,
# byte-identical answer.
dune exec bin/eco_cli.exe -- tune -k matmul -n 80 -b 100000 --prefilter \
  --db ci_db.bin --no-warm-start > ci_db_replay.txt
grep -Eq "^engine: +0 fresh evaluations" ci_db_replay.txt
grep -Eq "^db: +[1-9][0-9]* hits" ci_db_replay.txt
grep -E "^(best variant|parameters|prefetch|performance):" ci_db_replay.txt \
  > ci_db_replay_ans.txt
cmp ci_db_pop_ans.txt ci_db_replay_ans.txt

# Transfer warm-start at a neighboring size: transferred seeds must show
# in the telemetry and the warm search must simulate less than the
# populate run did.
dune exec bin/eco_cli.exe -- tune -k matmul -n 96 -b 100000 --prefilter \
  --db ci_db.bin > ci_db_warm.txt
grep -Eq "^db: .* [1-9][0-9]* warm-start seeds" ci_db_warm.txt
warm_fresh=$(sed -n 's/^engine: *\([0-9][0-9]*\) fresh evaluations.*/\1/p' ci_db_warm.txt)
test "$warm_fresh" -lt "$pop_fresh"

# Maintenance subcommands on the populated store.
dune exec bin/eco_cli.exe -- db stat ci_db.bin | grep -q "measurements"
dune exec bin/eco_cli.exe -- db compact ci_db.bin
dune exec bin/eco_cli.exe -- db export ci_db.bin | grep -q '"summaries"'

# Corruption: damaging a byte inside the first frame's payload must be
# a clean typed failure (exit 1, no crash) — for the subcommands and
# for tune --db alike.
printf '\377' | dd of=ci_db.bin bs=1 seek=40 count=1 conv=notrunc
set +e
dune exec bin/eco_cli.exe -- db stat ci_db.bin
rc=$?
set -e
test "$rc" -eq 1
set +e
dune exec bin/eco_cli.exe -- tune -k matmul -n 80 -b 100000 --db ci_db.bin
rc=$?
set -e
test "$rc" -eq 1
rm -f ci_db.bin ci_db_pop.txt ci_db_pop_ans.txt ci_db_replay.txt \
  ci_db_replay_ans.txt ci_db_warm.txt

# Transfer warm-start benchmark: >=30% fewer fresh simulations at <=2%
# chosen-point degradation on both kernels.
dune exec bench/main.exe -- --db-bench
grep -q '"warm_ok": true' BENCH_db.json
! grep -q '"warm_ok": false' BENCH_db.json

# --- The autotuning service (eco serve) ------------------------------
rm -rf ci_serve && mkdir -p ci_serve

# One-shot CLI reference answer: every service answer below must match
# these fields byte for byte.
dune exec bin/eco_cli.exe -- tune -k matvec -n 64 -b 100000 > ci_serve/cli.txt
grep -E "^(best variant|parameters|performance):" ci_serve/cli.txt \
  > ci_serve/cli_ans.txt

# Two identical tunes through one daemon: both answer ok, the second is
# served entirely from the shared memo (zero fresh simulations), and
# both match the one-shot CLI.
printf '%s\n%s\n' \
  '{"id":1,"method":"tune","params":{"kernel":"matvec","n":64,"budget":100000}}' \
  '{"id":2,"method":"tune","params":{"kernel":"matvec","n":64,"budget":100000}}' \
  | dune exec bin/eco_cli.exe -- serve --dir ci_serve/ck1 > ci_serve/two.jsonl
python3 - <<'EOF'
import json
res = {}
for line in open("ci_serve/two.jsonl"):
    j = json.loads(line)
    if "result" in j and j.get("id") is not None:
        res[j["id"]] = j["result"]
r1, r2 = res[1], res[2]
assert r1["status"] == "ok" and r2["status"] == "ok"
assert r2["fresh"] == 0 and r2["hits"] > 0, "second tune not memo-served"
cli = {}
for l in open("ci_serve/cli_ans.txt"):
    k, v = l.split(":", 1)
    cli[k.strip()] = v.strip()
for r in (r1, r2):
    assert r["best_variant"] == cli["best variant"], (r, cli)
    assert r["parameters"] == cli["parameters"], (r, cli)
    assert r["performance"] == cli["performance"].split()[0], (r, cli)
EOF

# Cancellation: the cancel lands at a batch boundary, the session
# answers with a typed "cancelled" partial plus a resumable checkpoint,
# and the daemon keeps serving (clean exit 0 at EOF).
printf '%s\n%s\n' \
  '{"id":3,"method":"tune","params":{"kernel":"matmul","n":96,"budget":300000}}' \
  '{"id":4,"method":"cancel","params":{"session":3}}' \
  | dune exec bin/eco_cli.exe -- serve --dir ci_serve/ck2 > ci_serve/cancel.jsonl
python3 - <<'EOF'
import json
res = {}
for line in open("ci_serve/cancel.jsonl"):
    j = json.loads(line)
    if "result" in j and j.get("id") is not None:
        res[j["id"]] = j["result"]
assert res[3]["status"] == "cancelled", res[3]
assert res[4]["cancelled"] is True, res[4]
EOF

# Crash-only recovery: a fault-injected kill -9 at the 10th batch
# boundary leaves a durable request file; a restarted daemon replays it
# unprompted to the same answer as the one-shot CLI, then consumes it.
set +e
printf '%s\n' \
  '{"id":7,"method":"tune","params":{"kernel":"matvec","n":64,"budget":100000}}' \
  | dune exec bin/eco_cli.exe -- serve --dir ci_serve/ck3 \
      --faults kill_after=10 > ci_serve/killed.jsonl
rc=$?
set -e
test "$rc" -ne 0
ls ci_serve/ck3/*.req
dune exec bin/eco_cli.exe -- serve --dir ci_serve/ck3 \
  < /dev/null > ci_serve/recovered.jsonl
python3 - <<'EOF'
import json
rec = None
for line in open("ci_serve/recovered.jsonl"):
    j = json.loads(line)
    if j.get("method") == "recovered":
        rec = j["params"]
assert rec is not None, "no recovered notification"
assert rec["session"] == 7 and rec["status"] == "ok", rec
cli = {}
for l in open("ci_serve/cli_ans.txt"):
    k, v = l.split(":", 1)
    cli[k.strip()] = v.strip()
assert rec["best_variant"] == cli["best variant"], (rec, cli)
assert rec["parameters"] == cli["parameters"], (rec, cli)
assert rec["performance"] == cli["performance"].split()[0], (rec, cli)
EOF
test -z "$(ls ci_serve/ck3/*.req 2>/dev/null)"

# A corrupt store degrades the daemon (db: degraded in status, tunes
# still answered correctly) instead of killing it.
rm -f ci_serve/db.bin
dune exec bin/eco_cli.exe -- tune -k matvec -n 64 -b 100000 \
  --db ci_serve/db.bin > /dev/null
printf 'XXXX' | dd of=ci_serve/db.bin bs=1 seek=13 count=4 conv=notrunc
printf '%s\n%s\n' \
  '{"id":8,"method":"status"}' \
  '{"id":9,"method":"tune","params":{"kernel":"matvec","n":64,"budget":100000}}' \
  | dune exec bin/eco_cli.exe -- serve --dir ci_serve/ck4 \
      --db ci_serve/db.bin > ci_serve/degraded.jsonl
python3 - <<'EOF'
import json
res = {}
for line in open("ci_serve/degraded.jsonl"):
    j = json.loads(line)
    if "result" in j and j.get("id") is not None:
        res[j["id"]] = j["result"]
assert res[8]["db"] == "degraded", res[8]
assert res[9]["status"] == "ok", res[9]
cli = {}
for l in open("ci_serve/cli_ans.txt"):
    k, v = l.split(":", 1)
    cli[k.strip()] = v.strip()
assert res[9]["best_variant"] == cli["best variant"], (res[9], cli)
EOF

# Single-writer lock: while the daemon holds the store, a concurrent
# "eco tune --db" on the same file must fail fast with the typed
# db_locked error, not corrupt anything.
rm -f ci_serve/db2.bin
mkfifo ci_serve/in
dune exec bin/eco_cli.exe -- serve --dir ci_serve/ck5 \
  --db ci_serve/db2.bin < ci_serve/in > ci_serve/lock.jsonl &
serve_pid=$!
exec 9> ci_serve/in
i=0
while test ! -s ci_serve/lock.jsonl && test "$i" -lt 100; do
  sleep 0.1
  i=$((i + 1))
done
test -s ci_serve/lock.jsonl
set +e
dune exec bin/eco_cli.exe -- tune -k matvec -n 64 -b 50000 \
  --db ci_serve/db2.bin > /dev/null 2> ci_serve/locked_err.txt
rc=$?
set -e
test "$rc" -eq 1
grep -q '"code":"db_locked"' ci_serve/locked_err.txt
exec 9>&-
wait "$serve_pid"

# Wall-clock deadline on the one-shot CLI: a typed partial with the
# timeout marker and the best point found so far, exit 0.
dune exec bin/eco_cli.exe -- tune -k matmul -n 128 -b 2000000 \
  --timeout 0.2 > ci_serve/timeout.txt
grep -q "^timeout:" ci_serve/timeout.txt
grep -q "^best variant:" ci_serve/timeout.txt
grep -q "(partial)" ci_serve/timeout.txt
rm -rf ci_serve

echo "ci.sh: all checks passed"
